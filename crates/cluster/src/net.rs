//! Real TCP serving layer: the wire codec of [`crate::message`] carried
//! over `std::net` sockets instead of channel shims.
//!
//! The paper's evaluation (Table I, Figs. 9/10) measures metadata servers
//! answering clients over a real network. This module supplies that
//! substrate in-workspace:
//!
//! * [`FrameBuf`] / [`FrameReader`] — incremental length-prefixed frame
//!   reassembly that is correct under arbitrarily short reads (a TCP
//!   stream may deliver one byte at a time) and rejects absurd length
//!   prefixes instead of buffering unboundedly.
//! * [`NetMds`] — one MDS worth of serving state (placement, local
//!   index, attribute table, optional WAL-backed durable store, metrics,
//!   tracing) behind a synchronous [`NetMds::serve`] call. The serve
//!   logic mirrors [`crate::live`]'s in-process server: replicated
//!   global-layer nodes serve anywhere, single-owner nodes either serve
//!   locally or redirect, unassigned targets report not-found.
//! * [`NetServer`] — a blocking thread-per-connection TCP server:
//!   accept loop on its own thread, one handler thread per client
//!   connection running a *batched* serve loop (every complete frame
//!   the last read buffered is decoded and served together, the
//!   batch's WAL appends share one group-committed fsync, and all
//!   responses leave in one buffered write), graceful shutdown via a
//!   stop flag plus a self-connect listener wake, and per-connection
//!   error isolation (a poisoned or reset connection dies alone; the
//!   listener and its siblings keep serving).
//! * [`NetClient`] — a blocking single-connection client speaking the
//!   same codec: request/response via [`NetClient::call`], or a
//!   pipelined window via [`NetClient::send_batch`] +
//!   [`NetClient::recv`].
//! * [`run_load`] — a multi-connection load generator driving seeded
//!   workload streams in closed-loop (each worker issues back-to-back)
//!   or open-loop (target QPS with a pacing clock; latency measured
//!   from the scheduled send time, so queueing delay is not omitted)
//!   modes, with owner-routing through a derived [`LocalIndex`],
//!   redirect following, retry/timeout under the shared
//!   [`RetryPolicy`], and an optional per-connection pipeline depth
//!   ([`LoadConfig::pipeline`]) that keeps N requests in flight while
//!   still measuring latency per operation.
//!
//! Trace contexts ride the 17-byte trailer of every [`Request`] frame,
//! so a sampled operation's span chain — client `op` root, per-try
//! `attempt` children, server `serve` span — links across the socket
//! exactly as it does over the in-process transport.
//!
//! One caveat versus the in-process cluster: each `d2tree serve`
//! process is a *single* replica with no cross-process lock service, so
//! replicated (global-layer) updates commit locally without the
//! Zookeeper-style serialisation of Sec. IV-A3. See DESIGN.md §14.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use d2tree_core::LocalIndex;
use d2tree_metrics::{Assignment, MdsId, Placement};
use d2tree_namespace::{AttrTable, NamespaceTree, NodeId};
use d2tree_store::{MdsRecord, MdsStore, StoreConfig};
use d2tree_telemetry::trace::{span_names, ArgKey, Span, SpanCtx, SpanId, TraceId, Tracer};
use d2tree_telemetry::{
    names, Counter, EventKind, Histogram, HistogramSnapshot, MetricKey, Registry,
};
use d2tree_workload::{OpKind, Operation, Trace};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::client::{RetryPolicy, RouteDecision};
use crate::live::{attr_state, ClientError};
use crate::message::{Request, RequestId, Response, ResponseBody, REQUEST_WIRE_BYTES};

/// Default cap on a single frame's body length. The real codec's frames
/// are tens of bytes; anything near this cap is garbage (a desynced
/// stream or a port scanner), and rejecting it bounds per-connection
/// memory.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Incremental assembly of length-prefixed frames from a byte stream.
///
/// Feed arbitrary chunks in with [`extend`](Self::extend); take complete
/// frames (4-byte big-endian length prefix *plus* body, so the existing
/// `decode` functions consume them directly) out with
/// [`next_frame`](Self::next_frame). Handles frames split across any
/// number of chunks, including one byte at a time, and multiple frames
/// arriving in one chunk.
#[derive(Debug)]
pub struct FrameBuf {
    buf: Vec<u8>,
    max_frame: usize,
}

impl FrameBuf {
    /// An empty buffer rejecting frames whose body exceeds `max_frame`.
    #[must_use]
    pub fn new(max_frame: usize) -> Self {
        FrameBuf {
            buf: Vec::new(),
            max_frame,
        }
    }

    /// Appends one received chunk.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet returned as a complete frame.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Takes the next complete frame (prefix + body) off the buffer.
    ///
    /// `Ok(None)` means more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] when the length prefix exceeds the
    /// configured cap — the stream is desynced or hostile and cannot be
    /// re-synchronised; the caller should drop the connection.
    pub fn next_frame(&mut self) -> io::Result<Option<Bytes>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
        if len > self.max_frame {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "frame body of {len} bytes exceeds the {} cap",
                    self.max_frame
                ),
            ));
        }
        let total = 4 + len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame: Vec<u8> = self.buf.drain(..total).collect();
        Ok(Some(Bytes::from(frame)))
    }
}

/// A [`FrameBuf`] fed from any [`Read`] — the server and client side of
/// every connection read frames through this.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: FrameBuf,
    scratch: Box<[u8]>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `inner`, rejecting frame bodies larger than `max_frame`.
    pub fn new(inner: R, max_frame: usize) -> Self {
        FrameReader {
            inner,
            buf: FrameBuf::new(max_frame),
            scratch: vec![0u8; 16 * 1024].into_boxed_slice(),
        }
    }

    /// Reads until one complete frame is buffered and returns it.
    ///
    /// `Ok(None)` is a clean EOF at a frame boundary (the peer closed
    /// between frames).
    ///
    /// # Errors
    ///
    /// * [`io::ErrorKind::UnexpectedEof`] — the peer closed mid-frame.
    /// * [`io::ErrorKind::InvalidData`] — oversized length prefix.
    /// * `WouldBlock` / `TimedOut` — propagated from a read timeout so
    ///   pollers can check their stop flag; buffered partial-frame bytes
    ///   are kept and the next call resumes where this one left off.
    pub fn next_frame(&mut self) -> io::Result<Option<Bytes>> {
        loop {
            if let Some(frame) = self.buf.next_frame()? {
                return Ok(Some(frame));
            }
            match self.inner.read(&mut self.scratch) {
                Ok(0) => {
                    return if self.buf.pending() == 0 {
                        Ok(None)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ))
                    };
                }
                Ok(n) => self.buf.extend(&self.scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Blocks until at least one complete frame is available, then
    /// drains *every* already-buffered complete frame into `out`
    /// without issuing further reads. This is the batch-serving
    /// primitive: a pipelining client that wrote N frames back-to-back
    /// typically lands them in one `read()` syscall, and the server
    /// gets all N here as one batch.
    ///
    /// Returns the number of frames appended to `out`; `Ok(0)` is a
    /// clean EOF at a frame boundary.
    ///
    /// # Errors
    ///
    /// Same contract as [`next_frame`](Self::next_frame). Errors can
    /// only surface before the first frame of a batch: once one frame
    /// is out, the remaining buffered bytes stay put for the next call.
    pub fn next_frames(&mut self, out: &mut Vec<Bytes>) -> io::Result<usize> {
        let Some(first) = self.next_frame()? else {
            return Ok(0);
        };
        out.push(first);
        let mut n = 1;
        // Drain whatever the last read left buffered; no more syscalls.
        // A poisoned prefix (oversized length) mid-drain is left in
        // place: the good frames ahead of it are served now and the
        // next call surfaces the error — FrameBuf consumes nothing on
        // error, so it cannot be skipped silently.
        while let Ok(Some(frame)) = self.buf.next_frame() {
            out.push(frame);
            n += 1;
        }
        Ok(n)
    }
}

/// Entries the slow-request log keeps.
const SLOW_LOG_CAPACITY: usize = 16;

/// One request in the slow-request log: what ran long, where it was
/// aimed, how it ended, and the trace id to pull its span chain with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowEntry {
    /// Server-side duration of the request, microseconds.
    pub dur_us: u64,
    /// Completion time as registry uptime, microseconds.
    pub t_us: u64,
    /// The requested operation kind.
    pub kind: OpKind,
    /// Target node index.
    pub target: u64,
    /// How it ended: 0 served, 1 redirect, 2 not-found.
    pub outcome: u8,
    /// Trace id from the wire trailer, when the request was sampled.
    pub trace: Option<u64>,
}

/// Bounded top-N-by-duration log of served requests.
///
/// The hot path is gated on a lock-free floor: once the log is full,
/// only a request slower than the current N-th slowest takes the mutex,
/// so steady-state fast requests cost one relaxed load.
#[derive(Debug)]
struct SlowLog {
    /// Duration of the slowest entry *not* worth logging — requests at
    /// or under this skip the lock. Zero until the log fills.
    floor: AtomicU64,
    entries: Mutex<Vec<SlowEntry>>,
}

impl SlowLog {
    fn new() -> Self {
        SlowLog {
            floor: AtomicU64::new(0),
            entries: Mutex::new(Vec::with_capacity(SLOW_LOG_CAPACITY)),
        }
    }

    fn observe(&self, e: SlowEntry) {
        if e.dur_us <= self.floor.load(Ordering::Relaxed) {
            return;
        }
        let mut entries = self.entries.lock();
        if entries.len() < SLOW_LOG_CAPACITY {
            entries.push(e);
        } else {
            let (i, slowest_min) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, x)| x.dur_us)
                .map(|(i, x)| (i, x.dur_us))
                .expect("full log is non-empty");
            if slowest_min >= e.dur_us {
                return; // the floor moved under us; still not worth it
            }
            entries[i] = e;
        }
        if entries.len() == SLOW_LOG_CAPACITY {
            let floor = entries
                .iter()
                .map(|x| x.dur_us)
                .min()
                .expect("full log is non-empty");
            self.floor.store(floor, Ordering::Relaxed);
        }
    }

    /// Entries sorted slowest first.
    fn top(&self) -> Vec<SlowEntry> {
        let mut v = self.entries.lock().clone();
        v.sort_by(|a, b| b.dur_us.cmp(&a.dur_us).then(a.t_us.cmp(&b.t_us)));
        v
    }
}

/// Row index for a request kind in the server-side latency matrix.
fn kind_index(kind: OpKind) -> usize {
    match kind {
        OpKind::Read => 0,
        OpKind::Write => 1,
        OpKind::Update => 2,
    }
}

/// One MDS worth of serving state behind a real socket.
///
/// Built from the same deterministic workspace derivation the load
/// generator uses (profile + seed → tree, trace popularity → placement
/// and local index), so a `serve` daemon and its `load` clients agree on
/// routing without any control-plane exchange.
#[derive(Debug)]
pub struct NetMds {
    tree: Arc<NamespaceTree>,
    placement: Placement,
    index: LocalIndex,
    me: MdsId,
    attrs: RwLock<AttrTable>,
    /// Served-op counts per local-layer subtree root, journaled so a
    /// restarted daemon recovers its popularity signal.
    subtree_counts: Mutex<HashMap<NodeId, f64>>,
    store: Mutex<Option<MdsStore>>,
    epoch: Instant,
    registry: Arc<Registry>,
    tracer: Option<Arc<Tracer>>,
    served: AtomicU64,
    redirects: AtomicU64,
    served_total: Arc<Counter>,
    forwarded_total: Arc<Counter>,
    /// Group commits on the serving path: one per batch whose journaled
    /// mutations were fsynced together before responding.
    wal_group_commits: Arc<Counter>,
    /// Server-side latency histograms, `[kind][outcome]` with outcome
    /// 0 served / 1 redirect / 2 not-found — the measurement the admin
    /// plane's `/metrics` reports next to client-observed latencies.
    srv_latency: [[Arc<Histogram>; 3]; 3],
    slow: SlowLog,
}

impl NetMds {
    /// Serving state for MDS `me` of the cluster described by
    /// `placement`/`index` over `tree`.
    ///
    /// # Panics
    ///
    /// Panics if the placement is not complete for `tree` — a daemon
    /// must know the assignment of every node it can be asked about.
    #[must_use]
    pub fn new(
        tree: Arc<NamespaceTree>,
        placement: Placement,
        index: LocalIndex,
        me: MdsId,
        registry: Arc<Registry>,
    ) -> Self {
        assert!(
            placement.is_complete(&tree),
            "net MDS needs a complete placement"
        );
        let attrs = RwLock::new(AttrTable::new(&tree));
        let served_total = registry.counter(MetricKey::mds(names::SERVER_SERVED_TOTAL, me.0));
        let forwarded_total = registry.counter(MetricKey::global(names::FORWARDED_TOTAL));
        let wal_group_commits =
            registry.counter(MetricKey::mds(names::WAL_GROUP_COMMITS_TOTAL, me.0));
        let srv_names = [
            [
                names::SRV_LATENCY_US_READ_OK,
                names::SRV_LATENCY_US_READ_REDIRECT,
                names::SRV_LATENCY_US_READ_ERROR,
            ],
            [
                names::SRV_LATENCY_US_WRITE_OK,
                names::SRV_LATENCY_US_WRITE_REDIRECT,
                names::SRV_LATENCY_US_WRITE_ERROR,
            ],
            [
                names::SRV_LATENCY_US_UPDATE_OK,
                names::SRV_LATENCY_US_UPDATE_REDIRECT,
                names::SRV_LATENCY_US_UPDATE_ERROR,
            ],
        ];
        let srv_latency =
            srv_names.map(|row| row.map(|name| registry.histogram(MetricKey::mds(name, me.0))));
        NetMds {
            tree,
            placement,
            index,
            me,
            attrs,
            subtree_counts: Mutex::new(HashMap::new()),
            store: Mutex::new(None),
            epoch: Instant::now(),
            registry,
            tracer: None,
            served: AtomicU64::new(0),
            redirects: AtomicU64::new(0),
            served_total,
            forwarded_total,
            wal_group_commits,
            srv_latency,
            slow: SlowLog::new(),
        }
    }

    /// Attaches a durable store at `<root>/mds-<k>`: recovers whatever a
    /// previous run left on disk (rebuilding the attribute table and
    /// popularity counters), then converges the journaled ownership set
    /// on the seeded index, exactly like the in-process cluster does.
    ///
    /// # Panics
    ///
    /// Panics if the store cannot be opened or recovered — a daemon must
    /// not serve from state it cannot trust.
    #[must_use]
    pub fn with_store_root(self, root: &Path, config: StoreConfig) -> Self {
        let k = self.me.index();
        let dir = root.join(format!("mds-{k}"));
        let (store, _info) = MdsStore::open(&dir, config).expect("store open failed");
        let mut store = store.with_registry(&self.registry, self.me.0);
        if let Some(tr) = &self.tracer {
            store = store.with_tracer(Arc::clone(tr), self.me.0);
        }
        // Recover in-memory state from the journal before serving.
        {
            let mut table = self.attrs.write();
            for (&node, a) in &store.state().attrs {
                let v = d2tree_namespace::VersionedAttr {
                    attr: d2tree_namespace::FileAttr {
                        mode: a.mode,
                        uid: a.uid,
                        gid: a.gid,
                        size: a.size,
                        mtime: a.mtime,
                    },
                    version: a.version,
                };
                table.apply_if_newer(NodeId::from_index(node as usize), v);
            }
        }
        {
            let mut counts = self.subtree_counts.lock();
            for (&r, &bits) in &store.state().popularity {
                counts.insert(NodeId::from_index(r as usize), f64::from_bits(bits));
            }
        }
        // Converge durable ownership on the seeded index: shed whatever
        // a previous run left behind, acquire what this run assigns.
        let seeded: std::collections::BTreeSet<u64> = self
            .index
            .iter()
            .filter(|(_, owner)| *owner == self.me)
            .map(|(root, _)| root.index() as u64)
            .collect();
        let stale: Vec<u64> = store.state().owned.difference(&seeded).copied().collect();
        for root in stale {
            store
                .append(MdsRecord::Ownership {
                    root,
                    acquired: false,
                })
                .expect("WAL append failed");
        }
        for root in seeded {
            store
                .append(MdsRecord::Ownership {
                    root,
                    acquired: true,
                })
                .expect("WAL append failed");
        }
        store.sync().expect("WAL sync failed");
        *self.store.lock() = Some(store);
        self
    }

    /// Attaches a tracer; sampled requests record `serve` spans parented
    /// on the trace context riding the request frame.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The telemetry registry this MDS instruments itself against.
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Operations this MDS has served (not redirected).
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Redirect responses this MDS has issued.
    #[must_use]
    pub fn redirects(&self) -> u64 {
        self.redirects.load(Ordering::Relaxed)
    }

    /// The tracer attached with [`with_tracer`](Self::with_tracer), if
    /// any — the admin plane reads live spans through it.
    #[must_use]
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// The slowest requests this daemon has served, slowest first
    /// (bounded at [`SLOW_LOG_CAPACITY`] entries).
    #[must_use]
    pub fn slow_requests(&self) -> Vec<SlowEntry> {
        self.slow.top()
    }

    /// A flight-recorder sample of this daemon's running totals.
    ///
    /// A single daemon has no popularity model and no sibling loads,
    /// so Def. 3 locality is NaN (unknown, exempt from health rules)
    /// and Def. 5 balance is +∞ (one replica is trivially balanced);
    /// redirects stand in for the retry signal, exactly the extra-hop
    /// meaning the rules assign it.
    #[must_use]
    pub fn tick_sample(&self) -> d2tree_telemetry::TickSample {
        let served = self.served();
        d2tree_telemetry::TickSample {
            t_us: self.registry.uptime_us(),
            locality: f64::NAN,
            balance: f64::INFINITY,
            ops_total: served,
            retries_total: self.redirects(),
            migrations_total: 0,
            loads: vec![served as f64],
        }
    }

    /// The attribute version this MDS holds for `node` — used by tests
    /// to verify updates actually committed.
    #[must_use]
    pub fn attr_version(&self, node: NodeId) -> u64 {
        self.attrs.read().get(node).version
    }

    /// Flushes the durable store (if any) so a clean shutdown leaves the
    /// WAL durable up to its last append.
    pub fn sync(&self) {
        if let Some(store) = self.store.lock().as_mut() {
            store.sync().expect("WAL sync failed");
        }
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn journal_record(&self, record: MdsRecord) {
        if let Some(store) = self.store.lock().as_mut() {
            // Buffer only: durability comes from the batch's single
            // group-committed fsync in `commit_batch`, issued before
            // the batch's responses are written back.
            store.append_deferred(record).expect("WAL append failed");
        }
    }

    /// Group-commits everything the current batch journaled: one fsync
    /// covers every buffered append, and the `wal_group_commits_total`
    /// counter ticks once per fsync actually issued. A no-op when no
    /// store is attached or nothing is pending (e.g. a read-only batch,
    /// or a sibling connection's commit already covered our appends —
    /// cross-connection coalescing is free and correct, since a later
    /// fsync makes every earlier buffered append durable too).
    pub fn commit_batch(&self) {
        if let Some(store) = self.store.lock().as_mut() {
            if store.pending_bytes() > 0 {
                store.sync().expect("WAL sync failed");
                self.wal_group_commits.inc();
            }
        }
    }

    /// Serves a batch of decoded requests and issues one group-committed
    /// fsync for every mutation the batch journaled, so the responses —
    /// written back by the caller *after* this returns — acknowledge
    /// durable state. This is the per-connection batch path: cost is one
    /// fsync per batch instead of one per mutating request.
    #[must_use]
    pub fn serve_batch(&self, reqs: &[Request]) -> Vec<Response> {
        let resps = reqs.iter().map(|&req| self.serve_deferred(req)).collect();
        self.commit_batch();
        resps
    }

    /// Serves one decoded request with durability deferred: journaled
    /// mutations stay buffered until the next [`commit_batch`]
    /// (or store-policy sync). Callers must not acknowledge the
    /// response to a remote peer before committing. Public for crash
    /// tests that need to open the ack-before-fsync window on purpose;
    /// everything else wants [`serve`](Self::serve) or
    /// [`serve_batch`](Self::serve_batch).
    ///
    /// [`commit_batch`]: Self::commit_batch
    ///
    /// Never panics on out-of-range targets: a request for a node this
    /// tree does not have answers `NotFound` (a foreign client built
    /// from a different workload derivation must not crash the daemon).
    #[must_use]
    pub fn serve_deferred(&self, req: Request) -> Response {
        let me = self.me.index();
        let t0 = Instant::now();
        // Serve span id allocated up front so the span parents correctly
        // on the wire context even though it is recorded at the end.
        let serve_ctx = match (self.tracer.as_deref(), req.trace) {
            (Some(tr), Some((t, s))) => {
                let ctx = SpanCtx {
                    trace: TraceId(t),
                    span: SpanId(s),
                };
                Some((ctx, tr.next_span(ctx.trace), tr.now_us()))
            }
            _ => None,
        };
        let in_tree = self.tree.node(req.target).is_some();
        let assignment = if in_tree {
            self.placement.assignment(req.target)
        } else {
            Assignment::Unassigned
        };
        let body = match assignment {
            Assignment::Replicated => {
                if req.kind == OpKind::Update {
                    // Single-replica global layer: no cross-process lock
                    // service exists yet, so the commit is local-only
                    // (DESIGN.md §14 spells out the divergence risk when
                    // several daemons of one cluster run concurrently).
                    let now = self.now_ms();
                    self.attrs.write().update(req.target, |a| a.mtime = now);
                    let committed = self.attrs.read().get(req.target);
                    self.journal_record(MdsRecord::AttrCommit {
                        node: req.target.index() as u64,
                        gl: true,
                        attr: attr_state(committed),
                    });
                }
                ResponseBody::Served { node: req.target }
            }
            Assignment::Single(owner) if owner == self.me => {
                if req.kind == OpKind::Update {
                    let now = self.now_ms();
                    self.attrs.write().update(req.target, |a| a.mtime = now);
                    let committed = self.attrs.read().get(req.target);
                    self.journal_record(MdsRecord::AttrCommit {
                        node: req.target.index() as u64,
                        gl: false,
                        attr: attr_state(committed),
                    });
                }
                ResponseBody::Served { node: req.target }
            }
            Assignment::Single(owner) => {
                self.redirects.fetch_add(1, Ordering::Relaxed);
                self.forwarded_total.inc();
                self.registry.journal().record(EventKind::Forwarded {
                    from: me as u16,
                    to: owner.0,
                });
                ResponseBody::Redirect { owner }
            }
            Assignment::Unassigned => ResponseBody::NotFound,
        };
        if matches!(body, ResponseBody::Served { .. }) {
            self.served.fetch_add(1, Ordering::Relaxed);
            self.served_total.inc();
            if matches!(assignment, Assignment::Single(_)) {
                if let Some((root, _)) = self.index.locate(&self.tree, req.target) {
                    let bits = {
                        let mut counts = self.subtree_counts.lock();
                        let v = counts.entry(root).or_insert(0.0);
                        *v += 1.0;
                        v.to_bits()
                    };
                    self.journal_record(MdsRecord::Popularity {
                        root: root.index() as u64,
                        bits,
                    });
                }
            }
        }
        let outcome = match body {
            ResponseBody::Served { .. } => 0u8,
            ResponseBody::Redirect { .. } => 1,
            ResponseBody::NotFound => 2,
        };
        let dur_us = t0.elapsed().as_micros() as u64;
        self.srv_latency[kind_index(req.kind)][usize::from(outcome)].record(dur_us);
        self.slow.observe(SlowEntry {
            dur_us,
            t_us: self.registry.uptime_us(),
            kind: req.kind,
            target: req.target.index() as u64,
            outcome,
            trace: req.trace.map(|(t, _)| t),
        });
        if let Some((ctx, serve_id, start)) = serve_ctx {
            let tr = self.tracer.as_deref().expect("ctx implies tracer");
            tr.record(
                Span::child(
                    ctx,
                    serve_id,
                    span_names::SERVE,
                    start,
                    tr.now_us().saturating_sub(start),
                )
                .on_mds(self.me.0)
                .with_arg(ArgKey::Target, req.target.index() as u64)
                .with_arg(
                    ArgKey::Body,
                    match body {
                        ResponseBody::Served { .. } => 0,
                        ResponseBody::Redirect { .. } => 1,
                        ResponseBody::NotFound => 2,
                    },
                ),
            );
        }
        Response {
            id: req.id,
            from: self.me,
            body,
            hops: req.hops,
        }
    }

    /// Serves one decoded request durably: a batch of one — any
    /// journaled mutation is group-committed before the response is
    /// returned. See [`serve_deferred`](Self::serve_deferred) for the
    /// serving semantics.
    #[must_use]
    pub fn serve(&self, req: Request) -> Response {
        let resp = self.serve_deferred(req);
        self.commit_batch();
        resp
    }

    /// The attached store's next LSN (records journaled so far), if a
    /// store is attached. Lets tests and diagnostics account journal
    /// growth without reaching into the store.
    #[must_use]
    pub fn store_next_lsn(&self) -> Option<u64> {
        self.store.lock().as_ref().map(MdsStore::next_lsn)
    }

    /// Crash-models the attached store: tears `keep` bytes of whatever
    /// is buffered-but-unsynced into the WAL file and drops the store
    /// (further serving continues without journaling, like a daemon
    /// whose disk died). Returns whether a store was attached. Test
    /// hook — pairs with [`serve_deferred`](Self::serve_deferred) to
    /// open a mid-group-commit window and verify recovery semantics.
    pub fn simulate_store_crash(&self, keep: usize) -> bool {
        match self.store.lock().take() {
            Some(store) => {
                store.simulate_crash(keep).expect("simulated crash failed");
                true
            }
            None => false,
        }
    }
}

/// The accept-loop/shutdown machinery shared by the frame-codec
/// [`NetServer`] and the admin plane's HTTP listener
/// ([`crate::admin::AdminServer`]): a bound listener, an accept thread
/// spawning one handler thread per connection, and graceful shutdown
/// via a stop flag plus a self-connect wake of the blocking accept.
///
/// The handler runs on its own thread and receives the shared stop
/// flag; it is expected to poll the flag (via a socket read timeout)
/// so shutdown completes within one poll interval.
#[derive(Debug)]
pub(crate) struct AcceptLoop {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl AcceptLoop {
    /// Binds `addr` (port 0 for ephemeral) and starts accepting;
    /// `handler` runs per connection on a dedicated thread.
    pub(crate) fn spawn<A, F>(
        addr: A,
        poll_interval: Duration,
        handler: F,
    ) -> io::Result<AcceptLoop>
    where
        A: ToSocketAddrs,
        F: Fn(TcpStream, &AtomicBool) + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_handle = {
            let stop = Arc::clone(&stop);
            let handler = Arc::new(handler);
            std::thread::spawn(move || {
                let mut handles: Vec<JoinHandle<()>> = Vec::new();
                loop {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            if stop.load(Ordering::SeqCst) {
                                break; // the shutdown wake-up connect, or a racer
                            }
                            let handler = Arc::clone(&handler);
                            let stop = Arc::clone(&stop);
                            handles.push(std::thread::spawn(move || handler(stream, &stop)));
                        }
                        Err(_) if stop.load(Ordering::SeqCst) => break,
                        Err(_) => {
                            // Transient accept failure (e.g. fd exhaustion):
                            // don't spin the core; the listener is alive.
                            std::thread::sleep(poll_interval);
                        }
                    }
                }
                handles
            })
        };
        Ok(AcceptLoop {
            addr,
            stop,
            accept_handle: Some(accept_handle),
        })
    }

    /// The address actually bound (resolves port 0).
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The stop flag shared with every handler thread, for sibling
    /// threads (e.g. a sampling ticker) that must stop with the server.
    pub(crate) fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Stops accepting and drains every handler thread. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the accept loop or a handler thread panicked.
    pub(crate) fn stop_and_join(&mut self) {
        let Some(handle) = self.accept_handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept; a refused connect is fine too (the
        // listener may already be gone if its thread errored out).
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let conn_handles = handle.join().expect("accept thread panicked");
        for h in conn_handles {
            h.join().expect("connection thread panicked");
        }
    }
}

impl Drop for AcceptLoop {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Tuning of a [`NetServer`].
#[derive(Debug, Clone, Copy)]
pub struct NetServerConfig {
    /// Read timeout on connection sockets, which doubles as the stop-flag
    /// poll granularity: a shutdown completes within roughly one interval.
    pub poll_interval: Duration,
    /// Per-frame body-size cap (see [`MAX_FRAME_BYTES`]).
    pub max_frame: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            poll_interval: Duration::from_millis(25),
            max_frame: MAX_FRAME_BYTES,
        }
    }
}

/// Totals a [`NetServer`] accumulated over its lifetime, reported by
/// [`NetServer::shutdown`]. Values are read from the shared registry's
/// `net_*` counters, so when several servers share one registry these
/// are registry-wide totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetServerStats {
    /// Connections accepted.
    pub conns: u64,
    /// Frames read off or written onto connections.
    pub frames: u64,
    /// Frames that failed to decode (connection then dropped).
    pub decode_errors: u64,
    /// Connections ending in an I/O error or mid-frame EOF.
    pub conn_resets: u64,
    /// Request batches served (one batch = every complete frame drained
    /// from one read, served together).
    pub batches: u64,
}

#[derive(Debug, Clone)]
struct NetCounters {
    conns: Arc<Counter>,
    frames: Arc<Counter>,
    decode_errors: Arc<Counter>,
    resets: Arc<Counter>,
    batches: Arc<Counter>,
    batch_depth: Arc<Histogram>,
}

impl NetCounters {
    fn from_registry(registry: &Registry) -> Self {
        NetCounters {
            conns: registry.counter(MetricKey::global(names::NET_CONNS_TOTAL)),
            frames: registry.counter(MetricKey::global(names::NET_FRAMES_TOTAL)),
            decode_errors: registry.counter(MetricKey::global(names::NET_DECODE_ERRORS_TOTAL)),
            resets: registry.counter(MetricKey::global(names::NET_CONN_RESETS_TOTAL)),
            batches: registry.counter(MetricKey::global(names::NET_BATCHES_TOTAL)),
            batch_depth: registry.histogram(MetricKey::global(names::NET_BATCH_DEPTH)),
        }
    }
}

/// A blocking thread-per-connection TCP server fronting one [`NetMds`].
#[derive(Debug)]
pub struct NetServer {
    acceptor: AcceptLoop,
    counters: NetCounters,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop. Each accepted connection gets its own handler thread
    /// running read → decode → [`NetMds::serve`] → encode → write until
    /// the peer closes, an error poisons the connection, or the server
    /// shuts down.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (address in use, permission denied).
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        mds: Arc<NetMds>,
        config: NetServerConfig,
    ) -> io::Result<NetServer> {
        let counters = NetCounters::from_registry(mds.registry());
        let active = mds
            .registry()
            .gauge(MetricKey::global(names::NET_ACTIVE_CONNS));
        let acceptor = {
            let counters = counters.clone();
            AcceptLoop::spawn(addr, config.poll_interval, move |stream, stop| {
                counters.conns.inc();
                active.add(1);
                conn_main(stream, &mds, &counters, stop, config);
                active.sub(1);
            })?
        };
        Ok(NetServer { acceptor, counters })
    }

    /// The address the server actually bound (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.acceptor.local_addr()
    }

    /// Stops accepting, drains every connection handler (each notices the
    /// stop flag within one poll interval), and reports totals.
    ///
    /// # Panics
    ///
    /// Panics if the accept loop or a connection handler panicked.
    #[must_use]
    pub fn shutdown(mut self) -> NetServerStats {
        self.acceptor.stop_and_join();
        NetServerStats {
            conns: self.counters.conns.get(),
            frames: self.counters.frames.get(),
            decode_errors: self.counters.decode_errors.get(),
            conn_resets: self.counters.resets.get(),
            batches: self.counters.batches.get(),
        }
    }
}

/// One connection's serve loop, batch-oriented: every complete frame
/// the last read left buffered is decoded and served as one batch
/// ([`NetMds::serve_batch`] — one group-committed fsync for the whole
/// batch's mutations), and all responses go back in a single buffered
/// write. A non-pipelining client degenerates to batches of one; a
/// pipelining client amortises syscalls and fsyncs across its window.
///
/// Errors are isolated here: whatever goes wrong, this thread cleans up
/// its own socket and exits without touching the listener or any
/// sibling connection.
fn conn_main(
    stream: TcpStream,
    mds: &NetMds,
    counters: &NetCounters,
    stop: &AtomicBool,
    config: NetServerConfig,
) {
    let _ = stream.set_nodelay(true);
    // The read timeout doubles as the stop-flag poll interval.
    let _ = stream.set_read_timeout(Some(config.poll_interval));
    let Ok(read_half) = stream.try_clone() else {
        counters.resets.inc();
        return;
    };
    let mut reader = FrameReader::new(read_half, config.max_frame);
    let mut write_half = stream;
    let mut frames: Vec<Bytes> = Vec::new();
    let mut reqs: Vec<Request> = Vec::new();
    let mut out: Vec<u8> = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        frames.clear();
        match reader.next_frames(&mut frames) {
            Ok(0) => break, // clean close at a frame boundary
            Ok(n) => {
                counters.frames.add(n as u64);
                counters.batches.inc();
                counters.batch_depth.record(n as u64);
                reqs.clear();
                let mut poisoned = false;
                for frame in &mut frames {
                    let Some(req) = Request::decode(frame) else {
                        // A byte stream cannot re-synchronise past a bad
                        // frame; serve the valid prefix of the batch,
                        // then drop the connection, keep the server.
                        counters.decode_errors.inc();
                        poisoned = true;
                        break;
                    };
                    reqs.push(req);
                }
                let resps = mds.serve_batch(&reqs);
                out.clear();
                for resp in &resps {
                    out.extend_from_slice(&resp.encode());
                }
                if !out.is_empty() && write_half.write_all(&out).is_err() {
                    counters.resets.inc();
                    break;
                }
                counters.frames.add(resps.len() as u64);
                if poisoned {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // poll tick: re-check the stop flag
            }
            Err(e) => {
                if e.kind() == io::ErrorKind::InvalidData {
                    counters.decode_errors.inc();
                } else {
                    counters.resets.inc();
                }
                break;
            }
        }
    }
}

/// A blocking client connection: one outstanding request at a time over
/// one TCP stream, speaking the same frame codec as the server.
#[derive(Debug)]
pub struct NetClient {
    write_half: TcpStream,
    reader: FrameReader<TcpStream>,
}

impl NetClient {
    /// Connects to `addr` (a `host:port` string) with `timeout` bounding
    /// both the connect and each subsequent read.
    ///
    /// # Errors
    ///
    /// Propagates resolution and connect failures; an unresolvable
    /// address reports [`io::ErrorKind::InvalidInput`].
    pub fn connect(addr: &str, timeout: Duration) -> io::Result<NetClient> {
        let sockaddr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let stream = TcpStream::connect_timeout(&sockaddr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let read_half = stream.try_clone()?;
        Ok(NetClient {
            write_half: stream,
            reader: FrameReader::new(read_half, MAX_FRAME_BYTES),
        })
    }

    /// Sends one request and blocks for its response frame.
    ///
    /// After any error the connection must be discarded: a late response
    /// to a timed-out request would desync the request/response pairing.
    ///
    /// # Errors
    ///
    /// * `TimedOut` / `WouldBlock` — no response within the read timeout.
    /// * [`io::ErrorKind::UnexpectedEof`] — the server closed on us.
    /// * [`io::ErrorKind::InvalidData`] — the response failed to decode.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        self.send_batch(std::slice::from_ref(req))?;
        self.recv()
    }

    /// Writes every request as one contiguous buffered write — a
    /// pipelining client's whole window leaves in a single syscall and
    /// typically lands in a single server-side read, which is what lets
    /// the server serve it as one batch. Responses come back in request
    /// order via [`recv`](Self::recv), one call per request.
    ///
    /// # Errors
    ///
    /// Propagates write failures; the connection must then be discarded.
    pub fn send_batch(&mut self, reqs: &[Request]) -> io::Result<()> {
        let mut buf = Vec::with_capacity(reqs.len() * (4 + REQUEST_WIRE_BYTES));
        for req in reqs {
            buf.extend_from_slice(&req.encode());
        }
        self.write_half.write_all(&buf)
    }

    /// Blocks for the next response frame.
    ///
    /// After any error the connection must be discarded: a late response
    /// to a timed-out request would desync the request/response pairing.
    ///
    /// # Errors
    ///
    /// * `TimedOut` / `WouldBlock` — no response within the read timeout.
    /// * [`io::ErrorKind::UnexpectedEof`] — the server closed on us.
    /// * [`io::ErrorKind::InvalidData`] — the response failed to decode.
    pub fn recv(&mut self) -> io::Result<Response> {
        match self.reader.next_frame()? {
            Some(mut frame) => Response::decode(&mut frame).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    "response frame failed to decode",
                )
            }),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
        }
    }
}

/// How [`run_load`] paces its workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Each worker issues its next operation the moment the previous one
    /// completes — measures peak sustainable throughput.
    Closed,
    /// Operations are released on a fixed schedule targeting this many
    /// operations per second across all workers; latency is measured
    /// from the *scheduled* send time, so a server falling behind shows
    /// up as queueing delay instead of being silently omitted.
    Open {
        /// Aggregate target rate, operations per second.
        target_qps: f64,
    },
}

/// Configuration of one [`run_load`] run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server addresses indexed by `MdsId` (`addrs[k]` serves MDS `k`).
    /// Owners beyond the list wrap modulo its length, so a single
    /// address can absorb a multi-MDS derivation for smoke tests.
    pub addrs: Vec<String>,
    /// Concurrent worker connections.
    pub conns: usize,
    /// Operations to issue in total (the trace is cycled if shorter).
    pub ops: usize,
    /// Closed- or open-loop pacing.
    pub mode: LoadMode,
    /// Per-attempt connect/read/write timeout.
    pub timeout: Duration,
    /// Retry budget, backoff and deadline shared with the live cluster.
    pub retry: RetryPolicy,
    /// Seed for per-worker routing/backoff randomness.
    pub seed: u64,
    /// Requests each worker keeps in flight on one connection (≥ 1).
    ///
    /// At 1 (the default) every worker is strictly request/response. At
    /// N, closed-loop workers burst windows of up to N consecutive
    /// same-destination operations in one buffered write and then drain
    /// the responses in order; open-loop workers still release each
    /// request on its schedule but only block for responses once N are
    /// outstanding. Latency stays per-operation and is measured from
    /// the send (closed) or scheduled-send (open) time of *that*
    /// operation, so pipelining adds no coordinated omission. Redirects,
    /// not-found and transport errors inside a window fall back to the
    /// sequential retry path, preserving completion semantics.
    pub pipeline: usize,
}

/// What one [`run_load`] run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Operations issued (completed + errors).
    pub attempted: u64,
    /// Operations that completed with a `Served` response.
    pub completed: u64,
    /// Operations that failed after exhausting their retry policy.
    pub errors: u64,
    /// Errors that were [`ClientError::Timeout`] (no server ever responded).
    pub timeouts: u64,
    /// Errors that were [`ClientError::RetriesExhausted`].
    pub retries_exhausted: u64,
    /// Errors that were [`ClientError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Errors that were [`ClientError::NotFound`].
    pub not_found: u64,
    /// Redirect responses followed to the advertised owner.
    pub redirects_followed: u64,
    /// Connections dropped (timeout, reset, desync) and later reopened.
    pub reconnects: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// `completed / elapsed`, operations per second.
    pub achieved_qps: f64,
    /// End-to-end latency of completed operations, microseconds.
    pub latency: HistogramSnapshot,
}

#[derive(Debug, Default, Clone, Copy)]
struct WorkerStats {
    attempted: u64,
    completed: u64,
    errors: u64,
    timeouts: u64,
    retries_exhausted: u64,
    deadline_exceeded: u64,
    not_found: u64,
    redirects: u64,
    reconnects: u64,
}

/// One request a pipelined worker has sent but not yet drained the
/// response for. `t0` is the honest per-op latency origin: the moment
/// its burst was written (closed loop) or its scheduled send time (open
/// loop).
struct Inflight {
    op: Operation,
    id: RequestId,
    t0: Instant,
}

/// One load worker's connections plus routing/retry state.
struct LoadWorker<'a> {
    addrs: &'a [String],
    conns: Vec<Option<NetClient>>,
    tree: &'a NamespaceTree,
    index: &'a LocalIndex,
    timeout: Duration,
    retry: RetryPolicy,
    rng: StdRng,
    tracer: Option<&'a Tracer>,
    counters: NetCounters,
    stats: WorkerStats,
    next_id: u64,
}

impl LoadWorker<'_> {
    /// Maps an owner id onto an address slot (wrapping, see
    /// [`LoadConfig::addrs`]).
    fn slot(&self, owner: MdsId) -> usize {
        owner.index() % self.addrs.len()
    }

    /// Routes one operation at a server slot: the located owner's slot,
    /// or a random slot for global-layer targets any MDS can serve.
    fn route(&mut self, op: Operation) -> usize {
        match self.index.locate(self.tree, op.target) {
            Some((_, owner)) => self.slot(owner),
            None => self.rng.gen_range(0..self.addrs.len()),
        }
    }

    /// Opens the connection for `dest` if it is not already up. `false`
    /// means the server is unreachable right now.
    fn ensure_conn(&mut self, dest: usize) -> bool {
        if self.conns[dest].is_some() {
            return true;
        }
        match NetClient::connect(&self.addrs[dest], self.timeout) {
            Ok(c) => {
                self.counters.conns.inc();
                self.conns[dest] = Some(c);
                true
            }
            Err(_) => false,
        }
    }

    /// Builds the next wire request for `op`. Pipelined fast-path
    /// requests carry no trace context — span linkage needs the
    /// sequential path, which fallbacks take.
    fn next_request(&mut self, op: Operation) -> Request {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        Request {
            id,
            kind: op.kind,
            target: op.target,
            hops: 0,
            trace: None,
        }
    }

    /// Books one finished operation: a served response records its
    /// latency from `t0`, an error lands in the taxonomy.
    fn account(
        &mut self,
        result: &Result<Response, ClientError>,
        t0: Instant,
        hist: &Histogram,
        op_latency: &Histogram,
    ) {
        match result {
            Ok(_) => {
                let us = t0.elapsed().as_micros() as u64;
                hist.record(us);
                op_latency.record(us);
                self.stats.completed += 1;
            }
            Err(e) => {
                self.stats.errors += 1;
                match e {
                    ClientError::Timeout { .. } => self.stats.timeouts += 1,
                    ClientError::RetriesExhausted { .. } => {
                        self.stats.retries_exhausted += 1;
                    }
                    ClientError::DeadlineExceeded { .. } => {
                        self.stats.deadline_exceeded += 1;
                    }
                    ClientError::NotFound => self.stats.not_found += 1,
                }
            }
        }
    }

    /// Finishes every deferred operation on the sequential retry path,
    /// keeping each op's original `t0` so retries and redirect chases
    /// show up as that op's latency, not as omitted time.
    fn finish_fallbacks(
        &mut self,
        fallbacks: &mut Vec<(Operation, Instant)>,
        hist: &Histogram,
        op_latency: &Histogram,
    ) {
        for (op, t0) in std::mem::take(fallbacks) {
            let result = self.execute(op);
            self.account(&result, t0, hist, op_latency);
        }
    }

    /// Receives and books one in-flight response. Returns `false` when
    /// the connection became unusable — every outstanding op (including
    /// the one just popped) has then been moved to `fallbacks`.
    fn drain_one(
        &mut self,
        dest: usize,
        window: &mut VecDeque<Inflight>,
        fallbacks: &mut Vec<(Operation, Instant)>,
        hist: &Histogram,
        op_latency: &Histogram,
    ) -> bool {
        let Some(inf) = window.pop_front() else {
            return true;
        };
        let Some(conn) = self.conns[dest].as_mut() else {
            fallbacks.push((inf.op, inf.t0));
            fallbacks.extend(window.drain(..).map(|r| (r.op, r.t0)));
            return false;
        };
        match conn.recv() {
            Ok(resp) if resp.id == inf.id => {
                self.counters.frames.inc();
                match resp.body {
                    ResponseBody::Served { .. } => {
                        let us = inf.t0.elapsed().as_micros() as u64;
                        hist.record(us);
                        op_latency.record(us);
                        self.stats.completed += 1;
                    }
                    ResponseBody::Redirect { .. } | ResponseBody::NotFound => {
                        // The sequential path owns redirect chasing and
                        // not-found policy; the op keeps its t0.
                        fallbacks.push((inf.op, inf.t0));
                    }
                }
                true
            }
            Ok(_) | Err(_) => {
                // Timeout, reset, garble or id desync: the stream's
                // request/response pairing is gone, so the connection
                // and every response still expected over it are lost.
                self.counters.resets.inc();
                self.conns[dest] = None;
                self.stats.reconnects += 1;
                fallbacks.push((inf.op, inf.t0));
                fallbacks.extend(window.drain(..).map(|r| (r.op, r.t0)));
                false
            }
        }
    }

    /// Drains the whole window (stops early if the connection dies —
    /// the remainder is in `fallbacks`).
    fn drain_window(
        &mut self,
        dest: usize,
        window: &mut VecDeque<Inflight>,
        fallbacks: &mut Vec<(Operation, Instant)>,
        hist: &Histogram,
        op_latency: &Histogram,
    ) {
        while !window.is_empty() {
            if !self.drain_one(dest, window, fallbacks, hist, op_latency) {
                break;
            }
        }
    }

    /// The pipelined worker body (`pipeline > 1`): closed loop bursts
    /// windows of up to `pipeline` consecutive same-destination ops in
    /// one buffered write and drains the responses in order; open loop
    /// releases each request on its schedule and only blocks once
    /// `pipeline` are outstanding. Latency is per-op from that op's
    /// send / scheduled-send time. Anything that cannot complete on the
    /// fast path (redirect, not-found, transport error, unreachable
    /// server) finishes on the sequential retry path with its original
    /// t0.
    #[allow(clippy::too_many_arguments)]
    fn run_pipelined(
        &mut self,
        ops: &[Operation],
        w: usize,
        stride: usize,
        pipeline: usize,
        interval: Option<Duration>,
        started: Instant,
        hist: &Histogram,
        op_latency: &Histogram,
    ) {
        let mut fallbacks: Vec<(Operation, Instant)> = Vec::new();
        let mut window: VecDeque<Inflight> = VecDeque::new();
        if let Some(iv) = interval {
            let mut cur_dest: Option<usize> = None;
            let mut k = 0u32;
            let mut i = w;
            while i < ops.len() {
                let op = ops[i];
                i += stride;
                let scheduled = started + iv * k;
                k += 1;
                let dest = self.route(op);
                if let Some(d) = cur_dest {
                    if d != dest {
                        // Responses are drained per connection; switch
                        // destinations only with an empty window.
                        self.drain_window(d, &mut window, &mut fallbacks, hist, op_latency);
                    }
                }
                cur_dest = Some(dest);
                while window.len() >= pipeline {
                    if !self.drain_one(dest, &mut window, &mut fallbacks, hist, op_latency) {
                        break;
                    }
                }
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                self.stats.attempted += 1;
                if self.ensure_conn(dest) {
                    let req = self.next_request(op);
                    self.counters.frames.inc();
                    let sent = self.conns[dest]
                        .as_mut()
                        .expect("just ensured")
                        .send_batch(std::slice::from_ref(&req));
                    if sent.is_ok() {
                        window.push_back(Inflight {
                            op,
                            id: req.id,
                            t0: scheduled,
                        });
                    } else {
                        self.counters.resets.inc();
                        self.conns[dest] = None;
                        self.stats.reconnects += 1;
                        fallbacks.push((op, scheduled));
                    }
                } else {
                    fallbacks.push((op, scheduled));
                }
                self.finish_fallbacks(&mut fallbacks, hist, op_latency);
            }
            if let Some(d) = cur_dest {
                self.drain_window(d, &mut window, &mut fallbacks, hist, op_latency);
            }
        } else {
            let mut i = w;
            while i < ops.len() {
                let first = ops[i];
                i += stride;
                let dest = self.route(first);
                let mut batch = vec![first];
                while batch.len() < pipeline && i < ops.len() {
                    let op = ops[i];
                    if self.route(op) != dest {
                        break;
                    }
                    batch.push(op);
                    i += stride;
                }
                self.stats.attempted += batch.len() as u64;
                if self.ensure_conn(dest) {
                    let reqs: Vec<Request> =
                        batch.iter().map(|&op| self.next_request(op)).collect();
                    let t0 = Instant::now();
                    self.counters.frames.add(reqs.len() as u64);
                    let sent = self.conns[dest]
                        .as_mut()
                        .expect("just ensured")
                        .send_batch(&reqs);
                    if sent.is_ok() {
                        for (&op, req) in batch.iter().zip(&reqs) {
                            window.push_back(Inflight { op, id: req.id, t0 });
                        }
                        self.drain_window(dest, &mut window, &mut fallbacks, hist, op_latency);
                    } else {
                        self.counters.resets.inc();
                        self.conns[dest] = None;
                        self.stats.reconnects += 1;
                        fallbacks.extend(batch.into_iter().map(|op| (op, t0)));
                    }
                } else {
                    let now = Instant::now();
                    fallbacks.extend(batch.into_iter().map(|op| (op, now)));
                }
                self.finish_fallbacks(&mut fallbacks, hist, op_latency);
            }
        }
        self.finish_fallbacks(&mut fallbacks, hist, op_latency);
    }

    fn execute(&mut self, op: Operation) -> Result<Response, ClientError> {
        let Some(tracer) = self.tracer else {
            return self.execute_inner(op, None);
        };
        let Some(ctx) = tracer.begin() else {
            return self.execute_inner(op, None);
        };
        let start = tracer.now_us();
        let result = self.execute_inner(op, Some(ctx));
        let mut span = Span::root(
            ctx,
            span_names::OP,
            start,
            tracer.now_us().saturating_sub(start),
        )
        .with_arg(ArgKey::Target, op.target.index() as u64)
        .with_arg(ArgKey::Kind, crate::sim::op_kind_code(op.kind));
        match &result {
            Ok(resp) => span = span.with_arg(ArgKey::Hops, u64::from(resp.hops)),
            Err(_) => span = span.with_arg(ArgKey::Error, 1),
        }
        tracer.record(span);
        result
    }

    fn execute_inner(
        &mut self,
        op: Operation,
        ctx: Option<SpanCtx>,
    ) -> Result<Response, ClientError> {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let started = Instant::now();
        let mut hops = 0u32;
        let mut forced: Option<usize> = None;
        let mut not_found_streak = 0usize;
        let mut got_response = false;
        let mut backoffs = 0usize;
        for _attempt in 0..self.retry.max_attempts {
            if started.elapsed() >= self.retry.deadline {
                return Err(ClientError::DeadlineExceeded {
                    elapsed: started.elapsed(),
                });
            }
            if backoffs > 0 {
                let pause = self.retry.backoff(backoffs - 1, &mut self.rng);
                let remaining = self.retry.deadline.saturating_sub(started.elapsed());
                std::thread::sleep(pause.min(remaining));
            }
            let (dest, route_code) = match forced.take() {
                Some(d) => (d, RouteDecision::REDIRECT_CODE),
                None => match self.index.locate(self.tree, op.target) {
                    Some((_, owner)) => (self.slot(owner), 0),
                    None => (self.rng.gen_range(0..self.addrs.len()), 1),
                },
            };
            if self.conns[dest].is_none() {
                match NetClient::connect(&self.addrs[dest], self.timeout) {
                    Ok(c) => {
                        self.counters.conns.inc();
                        self.conns[dest] = Some(c);
                    }
                    Err(_) => {
                        // Server unreachable (down, or not listening
                        // yet): back off and retry like a timeout.
                        self.attempt_span(ctx, started, dest, route_code, 3);
                        backoffs += 1;
                        continue;
                    }
                }
            }
            let req = Request {
                id,
                kind: op.kind,
                target: op.target,
                hops,
                trace: ctx.map(|c| (c.trace.0, c.span.0)),
            };
            let attempt_t0 = self.tracer.map(Tracer::now_us);
            self.counters.frames.inc();
            let outcome = self.conns[dest].as_mut().expect("just ensured").call(&req);
            match outcome {
                Ok(resp) if resp.id == id => {
                    self.counters.frames.inc();
                    got_response = true;
                    match resp.body {
                        ResponseBody::Served { .. } => {
                            self.attempt_span_at(ctx, attempt_t0, dest, route_code, 0);
                            return Ok(resp);
                        }
                        ResponseBody::Redirect { owner } => {
                            self.attempt_span_at(ctx, attempt_t0, dest, route_code, 1);
                            hops += 1;
                            forced = Some(self.slot(owner));
                            self.stats.redirects += 1;
                            // A redirect carries fresh routing: no backoff.
                        }
                        ResponseBody::NotFound => {
                            self.attempt_span_at(ctx, attempt_t0, dest, route_code, 2);
                            not_found_streak += 1;
                            if not_found_streak >= 3 {
                                return Err(ClientError::NotFound);
                            }
                            backoffs += 1;
                        }
                    }
                }
                Ok(_) => {
                    // Response id mismatch: the stream is desynced (a
                    // late answer to an abandoned request). Drop the
                    // connection; its replacement starts clean.
                    self.attempt_span_at(ctx, attempt_t0, dest, route_code, 4);
                    self.counters.resets.inc();
                    self.conns[dest] = None;
                    self.stats.reconnects += 1;
                    backoffs += 1;
                }
                Err(_) => {
                    // Timeout, reset or garble: same cure — a timed-out
                    // connection cannot be reused, its late response
                    // would pair with the wrong request.
                    self.attempt_span_at(ctx, attempt_t0, dest, route_code, 3);
                    self.counters.resets.inc();
                    self.conns[dest] = None;
                    self.stats.reconnects += 1;
                    backoffs += 1;
                }
            }
        }
        Err(if got_response {
            ClientError::RetriesExhausted {
                attempts: self.retry.max_attempts,
            }
        } else {
            ClientError::Timeout {
                attempts: self.retry.max_attempts,
            }
        })
    }

    /// Attempt span with `start` taken now-ish (connect failures, where
    /// no pre-call timestamp was captured).
    fn attempt_span(
        &self,
        ctx: Option<SpanCtx>,
        _started: Instant,
        dest: usize,
        route: u64,
        outcome: u64,
    ) {
        let t0 = self.tracer.map(Tracer::now_us);
        self.attempt_span_at(ctx, t0, dest, route, outcome);
    }

    /// Records one client try as an `attempt` span: which server slot,
    /// how it was routed, how it ended (0 served, 1 redirect,
    /// 2 not-found, 3 timeout/unreachable, 4 desynced/garbled).
    fn attempt_span_at(
        &self,
        ctx: Option<SpanCtx>,
        t0: Option<u64>,
        dest: usize,
        route: u64,
        outcome: u64,
    ) {
        if let (Some(tr), Some(ctx)) = (self.tracer, ctx) {
            let start = t0.unwrap_or(0);
            tr.record(
                Span::child(
                    ctx,
                    tr.next_span(ctx.trace),
                    span_names::ATTEMPT,
                    start,
                    tr.now_us().saturating_sub(start),
                )
                .on_mds(dest as u16)
                .with_arg(ArgKey::Route, route)
                .with_arg(ArgKey::Outcome, outcome),
            );
        }
    }
}

/// Drives `cfg.ops` operations from `trace` against the servers at
/// `cfg.addrs` over `cfg.conns` concurrent connections, routing each
/// operation at its owner through `index` (derived client-side from the
/// same workload flags the servers were started with).
///
/// Completed-operation latencies land in the returned report's
/// histogram *and* in the registry's `op_latency_us` histogram; the
/// `net_*` counters account connections, frames and resets.
///
/// # Panics
///
/// Panics if `cfg.addrs` is empty, `cfg.conns` is zero, the trace is
/// empty while `cfg.ops > 0`, or a worker thread panics.
#[must_use]
pub fn run_load(
    cfg: &LoadConfig,
    tree: &Arc<NamespaceTree>,
    index: &LocalIndex,
    trace: &Trace,
    registry: &Arc<Registry>,
    tracer: Option<&Arc<Tracer>>,
) -> LoadReport {
    assert!(!cfg.addrs.is_empty(), "load needs at least one server");
    assert!(cfg.conns >= 1, "load needs at least one connection");
    assert!(cfg.pipeline >= 1, "pipeline depth must be at least 1");
    assert!(
        cfg.ops == 0 || !trace.is_empty(),
        "load needs a non-empty trace"
    );
    let ops: Vec<Operation> = (0..cfg.ops).map(|i| trace.ops()[i % trace.len()]).collect();
    let hist = Histogram::new();
    let op_latency = registry.histogram(MetricKey::global(names::OP_LATENCY_US));
    let counters = NetCounters::from_registry(registry);
    let interval = match cfg.mode {
        LoadMode::Closed => None,
        LoadMode::Open { target_qps } => {
            assert!(
                target_qps > 0.0,
                "open-loop load needs a positive target QPS"
            );
            Some(Duration::from_secs_f64(cfg.conns as f64 / target_qps))
        }
    };
    let started = Instant::now();
    let worker_stats: Vec<WorkerStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.conns)
            .map(|w| {
                let ops = &ops;
                let hist = &hist;
                let op_latency = Arc::clone(&op_latency);
                let counters = counters.clone();
                let tracer = tracer.map(Arc::as_ref);
                s.spawn(move || {
                    let mut worker = LoadWorker {
                        addrs: &cfg.addrs,
                        conns: (0..cfg.addrs.len()).map(|_| None).collect(),
                        tree,
                        index,
                        timeout: cfg.timeout,
                        retry: cfg.retry,
                        rng: StdRng::seed_from_u64(
                            cfg.seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(w as u64 + 1),
                        ),
                        tracer,
                        counters,
                        stats: WorkerStats::default(),
                        // Ids unique across workers so a desynced frame
                        // can never pair with another worker's request.
                        next_id: (w as u64) << 48 | 1,
                    };
                    if cfg.pipeline > 1 {
                        worker.run_pipelined(
                            ops,
                            w,
                            cfg.conns,
                            cfg.pipeline,
                            interval,
                            started,
                            hist,
                            &op_latency,
                        );
                        return worker.stats;
                    }
                    let mut k = 0u32;
                    let mut i = w;
                    while i < ops.len() {
                        let op = ops[i];
                        let t0 = match interval {
                            Some(iv) => {
                                let scheduled = started + iv * k;
                                let now = Instant::now();
                                if scheduled > now {
                                    std::thread::sleep(scheduled - now);
                                }
                                scheduled
                            }
                            None => Instant::now(),
                        };
                        k += 1;
                        worker.stats.attempted += 1;
                        let result = worker.execute(op);
                        worker.account(&result, t0, hist, &op_latency);
                        i += cfg.conns;
                    }
                    worker.stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load worker panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    let mut total = WorkerStats::default();
    for ws in &worker_stats {
        total.attempted += ws.attempted;
        total.completed += ws.completed;
        total.errors += ws.errors;
        total.timeouts += ws.timeouts;
        total.retries_exhausted += ws.retries_exhausted;
        total.deadline_exceeded += ws.deadline_exceeded;
        total.not_found += ws.not_found;
        total.redirects += ws.redirects;
        total.reconnects += ws.reconnects;
    }
    let achieved_qps = if elapsed.as_secs_f64() > 0.0 {
        total.completed as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };
    LoadReport {
        attempted: total.attempted,
        completed: total.completed,
        errors: total.errors,
        timeouts: total.timeouts,
        retries_exhausted: total.retries_exhausted,
        deadline_exceeded: total.deadline_exceeded,
        not_found: total.not_found,
        redirects_followed: total.redirects,
        reconnects: total.reconnects,
        elapsed,
        achieved_qps,
        latency: hist.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_namespace::NodeKind;

    fn request_frame(id: u64, target: u32) -> Vec<u8> {
        Request {
            id: RequestId(id),
            kind: OpKind::Read,
            target: NodeId::from_index(target as usize),
            hops: 0,
            trace: None,
        }
        .encode()
        .to_vec()
    }

    #[test]
    fn frame_buf_reassembles_split_frames() {
        let a = request_frame(1, 0);
        let b = request_frame(2, 7);
        let mut stream = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);
        // Feed in ragged chunks of 3 bytes.
        let mut fb = FrameBuf::new(MAX_FRAME_BYTES);
        let mut out = Vec::new();
        for chunk in stream.chunks(3) {
            fb.extend(chunk);
            while let Some(frame) = fb.next_frame().unwrap() {
                out.push(frame.to_vec());
            }
        }
        assert_eq!(out, vec![a, b]);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn frame_buf_rejects_oversize_length_prefix() {
        let mut fb = FrameBuf::new(1024);
        fb.extend(&u32::MAX.to_be_bytes());
        let err = fb.next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn frame_buf_accepts_frame_exactly_at_cap() {
        let mut fb = FrameBuf::new(8);
        fb.extend(&8u32.to_be_bytes());
        fb.extend(&[0xAB; 8]);
        let frame = fb.next_frame().unwrap().expect("complete frame");
        assert_eq!(frame.len(), 12);
    }

    /// A reader that returns one byte per `read` call — the worst case a
    /// TCP stack can legally deliver.
    struct OneByteReader {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for OneByteReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_reader_reassembles_one_byte_at_a_time() {
        let a = request_frame(9, 3);
        let b = request_frame(10, 4);
        let mut data = Vec::new();
        data.extend_from_slice(&a);
        data.extend_from_slice(&b);
        let mut reader = FrameReader::new(OneByteReader { data, pos: 0 }, MAX_FRAME_BYTES);
        let first = reader.next_frame().unwrap().expect("first frame");
        assert_eq!(first.to_vec(), a);
        // The reassembled frame decodes to the original request.
        let mut buf = first;
        let req = Request::decode(&mut buf).expect("decodes");
        assert_eq!(req.id, RequestId(9));
        let second = reader.next_frame().unwrap().expect("second frame");
        assert_eq!(second.to_vec(), b);
        assert!(reader.next_frame().unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn frame_reader_mid_frame_eof_is_unexpected_eof() {
        let mut data = request_frame(1, 0);
        data.truncate(data.len() - 1); // peer died one byte short
        let mut reader = FrameReader::new(OneByteReader { data, pos: 0 }, MAX_FRAME_BYTES);
        let err = reader.next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn frame_reader_empty_stream_is_clean_eof() {
        let mut reader = FrameReader::new(
            OneByteReader {
                data: Vec::new(),
                pos: 0,
            },
            MAX_FRAME_BYTES,
        );
        assert!(reader.next_frame().unwrap().is_none());
    }

    /// Smallest possible end-to-end check kept module-local; the real
    /// loopback suites live in `tests/net_serve.rs`.
    #[test]
    fn loopback_single_request_roundtrip() {
        let mut tree = NamespaceTree::new();
        let sub = tree
            .create(tree.root(), "s", NodeKind::Directory)
            .expect("create");
        let tree = Arc::new(tree);
        let mut placement = Placement::new(&tree, 1);
        for (id, _) in tree.nodes() {
            placement.set(id, Assignment::Single(MdsId(0)));
        }
        let mut index = LocalIndex::new();
        index.insert(tree.root(), MdsId(0));
        let registry = Arc::new(Registry::new());
        let mds = Arc::new(NetMds::new(
            Arc::clone(&tree),
            placement,
            index,
            MdsId(0),
            registry,
        ));
        let server = NetServer::bind("127.0.0.1:0", Arc::clone(&mds), NetServerConfig::default())
            .expect("bind");
        let addr = server.local_addr().to_string();
        let mut client = NetClient::connect(&addr, Duration::from_secs(2)).expect("connect");
        let resp = client
            .call(&Request {
                id: RequestId(42),
                kind: OpKind::Read,
                target: sub,
                hops: 0,
                trace: None,
            })
            .expect("call");
        assert_eq!(resp.id, RequestId(42));
        assert_eq!(resp.body, ResponseBody::Served { node: sub });
        drop(client);
        let stats = server.shutdown();
        assert_eq!(stats.conns, 1);
        assert!(stats.frames >= 2, "one request + one response");
        assert_eq!(stats.decode_errors, 0);
        assert_eq!(mds.served(), 1);
    }

    #[test]
    fn garbage_frame_drops_connection_not_server() {
        let tree = Arc::new(NamespaceTree::new());
        let mut placement = Placement::new(&tree, 1);
        for (id, _) in tree.nodes() {
            placement.set(id, Assignment::Single(MdsId(0)));
        }
        let registry = Arc::new(Registry::new());
        let mds = Arc::new(NetMds::new(
            Arc::clone(&tree),
            placement,
            LocalIndex::new(),
            MdsId(0),
            registry,
        ));
        let server = NetServer::bind("127.0.0.1:0", Arc::clone(&mds), NetServerConfig::default())
            .expect("bind");
        let addr = server.local_addr().to_string();
        // First connection sends garbage with a plausible length prefix:
        // the decoder rejects it and the server drops just this conn.
        {
            let mut bad = NetClient::connect(&addr, Duration::from_secs(2)).expect("connect");
            let mut junk = Vec::new();
            junk.extend_from_slice(&10u32.to_be_bytes());
            junk.extend_from_slice(&[0xFF; 10]);
            bad.write_half.write_all(&junk).expect("write junk");
            // The server closes on us; the next read sees EOF (or a
            // reset, depending on timing) rather than hanging.
            let err = bad.call(&Request {
                id: RequestId(1),
                kind: OpKind::Read,
                target: tree.root(),
                hops: 0,
                trace: None,
            });
            assert!(err.is_err(), "poisoned connection must not answer");
        }
        // A fresh connection still gets served.
        let mut good = NetClient::connect(&addr, Duration::from_secs(2)).expect("connect");
        let resp = good
            .call(&Request {
                id: RequestId(2),
                kind: OpKind::Read,
                target: tree.root(),
                hops: 0,
                trace: None,
            })
            .expect("server survived the bad peer");
        assert_eq!(resp.id, RequestId(2));
        drop(good);
        let stats = server.shutdown();
        assert_eq!(stats.decode_errors, 1);
        assert_eq!(stats.conns, 2);
    }

    /// A reader that returns each predefined chunk in one `read` call —
    /// models a TCP stack delivering bytes at arbitrary boundaries.
    struct ChunkReader {
        chunks: Vec<Vec<u8>>,
        pos: usize,
    }

    impl Read for ChunkReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let Some(chunk) = self.chunks.get(self.pos) else {
                return Ok(0);
            };
            assert!(buf.len() >= chunk.len(), "test chunks fit the scratch");
            buf[..chunk.len()].copy_from_slice(chunk);
            self.pos += 1;
            Ok(chunk.len())
        }
    }

    /// Property sweep for the batch drain: three back-to-back frames (a
    /// pipelined client's burst) split at *every* byte boundary must
    /// reassemble to exactly those frames, in order, regardless of how
    /// the cut lands relative to length prefixes and bodies.
    #[test]
    fn frame_reader_drains_pipelined_frames_split_at_every_boundary() {
        let frames = [
            request_frame(1, 0),
            request_frame(2, 7),
            request_frame(3, 9),
        ];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(f);
        }
        for cut in 0..=stream.len() {
            let chunks: Vec<Vec<u8>> = [&stream[..cut], &stream[cut..]]
                .iter()
                .filter(|c| !c.is_empty())
                .map(|c| c.to_vec())
                .collect();
            let mut reader = FrameReader::new(ChunkReader { chunks, pos: 0 }, MAX_FRAME_BYTES);
            let mut got: Vec<Vec<u8>> = Vec::new();
            let mut batches = Vec::new();
            loop {
                let mut out = Vec::new();
                let n = reader.next_frames(&mut out).expect("no error in sweep");
                if n == 0 {
                    break;
                }
                batches.push(n);
                got.extend(out.iter().map(|b| b.to_vec()));
            }
            assert_eq!(got, frames.to_vec(), "cut at byte {cut}");
            // A cut mid-stream yields at most one batch per chunk.
            assert!(batches.len() <= 2, "cut at byte {cut}: {batches:?}");
            assert_eq!(batches.iter().sum::<usize>(), 3, "cut at byte {cut}");
        }
    }

    /// Same sweep with the final frame truncated: every complete frame
    /// ahead of the tear is delivered, then the reader reports
    /// `UnexpectedEof` — never a silent drop, never a hang.
    #[test]
    fn frame_reader_truncated_final_frame_yields_prefix_then_eof_error() {
        let frames = [
            request_frame(4, 1),
            request_frame(5, 2),
            request_frame(6, 3),
        ];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(f);
        }
        let whole = frames.iter().map(Vec::len).sum::<usize>();
        for tear in (whole - frames[2].len() + 1)..whole {
            let mut reader = FrameReader::new(
                OneByteReader {
                    data: stream[..tear].to_vec(),
                    pos: 0,
                },
                MAX_FRAME_BYTES,
            );
            let mut got: Vec<Vec<u8>> = Vec::new();
            let err = loop {
                let mut out = Vec::new();
                match reader.next_frames(&mut out) {
                    Ok(0) => panic!("tear at {tear}: clean EOF despite a partial frame"),
                    Ok(_) => got.extend(out.iter().map(|b| b.to_vec())),
                    Err(e) => break e,
                }
            };
            assert_eq!(got, frames[..2].to_vec(), "tear at byte {tear}");
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "tear at {tear}");
        }
    }

    /// A pipelined window over a real socket: eight requests leave in
    /// one buffered write, eight responses come back in request order.
    #[test]
    fn loopback_pipelined_window_roundtrips_in_order() {
        let mut tree = NamespaceTree::new();
        let sub = tree
            .create(tree.root(), "s", NodeKind::Directory)
            .expect("create");
        let tree = Arc::new(tree);
        let mut placement = Placement::new(&tree, 1);
        for (id, _) in tree.nodes() {
            placement.set(id, Assignment::Single(MdsId(0)));
        }
        let mut index = LocalIndex::new();
        index.insert(tree.root(), MdsId(0));
        let registry = Arc::new(Registry::new());
        let mds = Arc::new(NetMds::new(
            Arc::clone(&tree),
            placement,
            index,
            MdsId(0),
            registry,
        ));
        let server = NetServer::bind("127.0.0.1:0", Arc::clone(&mds), NetServerConfig::default())
            .expect("bind");
        let addr = server.local_addr().to_string();
        let mut client = NetClient::connect(&addr, Duration::from_secs(2)).expect("connect");
        let reqs: Vec<Request> = (0..8)
            .map(|i| Request {
                id: RequestId(100 + i),
                kind: if i % 2 == 0 {
                    OpKind::Read
                } else {
                    OpKind::Update
                },
                target: sub,
                hops: 0,
                trace: None,
            })
            .collect();
        client.send_batch(&reqs).expect("one buffered write");
        for req in &reqs {
            let resp = client.recv().expect("in-order response");
            assert_eq!(resp.id, req.id);
            assert_eq!(resp.body, ResponseBody::Served { node: sub });
        }
        drop(client);
        let stats = server.shutdown();
        assert_eq!(mds.served(), 8);
        assert!(
            (1..=8).contains(&stats.batches),
            "8 frames arrived in {} batch(es)",
            stats.batches
        );
        assert_eq!(stats.frames, 16, "8 requests + 8 responses");
    }

    /// The group-commit contract of `serve_batch`: one batch of
    /// mutations costs exactly one fsync (`wal_group_commits_total`
    /// ticks once), a read-only batch costs none, and every journaled
    /// record is on disk when the call returns.
    #[test]
    fn serve_batch_group_commits_once_per_mutating_batch() {
        let dir = std::env::temp_dir().join(format!(
            "d2tree-net-gc-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut tree = NamespaceTree::new();
        let sub = tree
            .create(tree.root(), "s", NodeKind::Directory)
            .expect("create");
        let tree = Arc::new(tree);
        let mut placement = Placement::new(&tree, 1);
        for (id, _) in tree.nodes() {
            placement.set(id, Assignment::Single(MdsId(0)));
        }
        let mut index = LocalIndex::new();
        index.insert(tree.root(), MdsId(0));
        let registry = Arc::new(Registry::new());
        let mds = NetMds::new(
            Arc::clone(&tree),
            placement,
            index,
            MdsId(0),
            Arc::clone(&registry),
        )
        .with_store_root(&dir, StoreConfig::manual());
        let commits = registry.counter(MetricKey::mds(names::WAL_GROUP_COMMITS_TOTAL, 0));
        let commits_0 = commits.get();

        let req = |i: u64, kind: OpKind| Request {
            id: RequestId(i),
            kind,
            target: sub,
            hops: 0,
            trace: None,
        };
        // A batch that journals nothing (unassigned target → NotFound)
        // must not fsync at all.
        let miss = Request {
            id: RequestId(1),
            kind: OpKind::Read,
            target: NodeId::from_index(9_999),
            hops: 0,
            trace: None,
        };
        let resps = mds.serve_batch(&[miss]);
        assert_eq!(resps[0].body, ResponseBody::NotFound);
        assert_eq!(commits.get(), commits_0, "nothing journaled, no fsync");
        // Mutating batch: four updates (each journals an AttrCommit
        // plus a Popularity record) share one group commit.
        let lsn_before = mds.store_next_lsn().expect("store attached");
        let batch: Vec<Request> = (10..14).map(|i| req(i, OpKind::Update)).collect();
        let resps = mds.serve_batch(&batch);
        assert!(resps
            .iter()
            .all(|r| matches!(r.body, ResponseBody::Served { .. })));
        assert_eq!(commits.get(), commits_0 + 1, "one fsync for the batch");
        let lsn_after = mds.store_next_lsn().expect("store attached");
        assert!(
            lsn_after >= lsn_before + 4,
            "each update journaled at least its AttrCommit"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
