//! Deterministic virtual-time chaos engine for the recovery protocol.
//!
//! [`run_chaos`] replays a seeded schedule of MDS crashes, restarts and
//! Monitor-link partitions against the full recovery stack — the real
//! [`Monitor`] state machine, the real lease-based [`LockService`] and
//! the real mirror-division rejoin path — on a virtual millisecond
//! clock. Unlike the wall-clock live runtime, every run with the same
//! seed and config produces an *identical* event journal, so a failing
//! schedule is a reproducible test case, not an anecdote.
//!
//! The engine machine-checks the cluster's safety invariants at every
//! quiesce point (no partition active, every crash declared and failed
//! over, schedule given time to settle):
//!
//! * no local-layer subtree is lost — the ownership table always covers
//!   exactly the subtrees the initial placement published;
//! * no subtree is owned by a crashed server once fail-over settles;
//! * global-layer versions converge across all live replicas (a crashed
//!   replica freezes, misses commits, and must re-sync on restart).
//!
//! Crashes are adversarial: a victim that can grab the global-layer
//! lock crashes *while holding it*, so the schedule also exercises the
//! lease-expiry path (updates stay blocked until the dead holder's
//! lease runs out, never forever).
//!
//! [`run_store_chaos`] is the durability counterpart: it drives real
//! [`MdsStore`]s on disk through a seeded schedule of appends, group
//! commits, snapshots and crashes with injected storage faults (torn
//! writes, lying fsyncs, bit-flipped durable records) and machine-checks
//! the store's recovery contract — a reopened store is always the exact
//! replay of a prefix of its history, never less than the fsynced
//! floor, and detected corruption always fails loudly.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use d2tree_core::{D2TreeConfig, D2TreeScheme, Heartbeat, Partitioner, Subtree};
use d2tree_metrics::{ClusterSpec, MdsId, Migration};
use d2tree_namespace::{NamespaceTree, NodeId};
use d2tree_store::{AttrState, MdsRecord, MdsState, MdsStore, StoreConfig};
use d2tree_telemetry::{names, EventKind, FaultKind, MetricKey, Registry};
use d2tree_workload::{TraceProfile, WorkloadBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::consensus::{
    Applied, Command, ConsensusCluster, ConsensusConfig, ConsensusTiming, LeaderClient,
};
use crate::fault::{
    FaultDecision, FaultInjector, FaultPlan, FaultRule, FaultScope, NetEdge, StorageFault,
    StorageFaultRule,
};
use crate::lock::LockService;
use crate::monitor::{ClusterEvent, Monitor, MonitorConfig};

/// Shape of a chaos run. The schedule itself (who dies when, where the
/// partitions fall) is derived deterministically from the seed passed
/// to [`run_chaos`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Cluster size.
    pub mds: usize,
    /// Namespace-tree size the placement is built over.
    pub nodes: usize,
    /// Virtual ticks to run; disruptions are scheduled in the first 60%,
    /// the tail is settle time.
    pub ticks: u64,
    /// Virtual milliseconds per tick (one heartbeat round).
    pub tick_ms: u64,
    /// Crash-restart cycles to schedule.
    pub kills: usize,
    /// Monitor-link partition windows to schedule (long enough to cause
    /// false failure declarations, so recovery must also cope with
    /// resurrections of servers that never actually died).
    pub partitions: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            mds: 4,
            nodes: 600,
            ticks: 400,
            tick_ms: 20,
            kills: 2,
            partitions: 1,
        }
    }
}

/// What a chaos run did and found.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// The seed the schedule was derived from.
    pub seed: u64,
    /// Ticks executed.
    pub ticks: u64,
    /// Crashes injected.
    pub kills: usize,
    /// Restarts performed.
    pub restarts: usize,
    /// Partition windows injected.
    pub partitions: usize,
    /// Rejoin protocols completed (restarts plus partition resurrections).
    pub rejoins: usize,
    /// Rejoins in which the returning server claimed at least one subtree.
    pub rejoins_with_claims: usize,
    /// Global-layer updates blocked by a crashed lock holder's
    /// still-live lease (they unblock at lease expiry).
    pub blocked_updates: u64,
    /// Invariant violations observed at quiesce points (empty = the
    /// recovery protocol survived the schedule).
    pub violations: Vec<String>,
    /// The run's event journal (heartbeats elided), in order. Two runs
    /// with the same seed and config produce identical journals.
    pub journal: Vec<EventKind>,
    /// Messages the fault plan dropped.
    pub faults_dropped: u64,
    /// Messages the fault plan delayed or reordered.
    pub faults_delayed: u64,
    /// Messages the fault plan duplicated.
    pub faults_duplicated: u64,
}

/// One scheduled disruption, in virtual ms.
#[derive(Debug, Clone, Copy)]
enum Disruption {
    Kill(MdsId),
    Restart(MdsId),
}

/// Runs one seeded chaos schedule to completion.
///
/// # Panics
///
/// Panics if `config` is degenerate (zero MDSs, ticks or tick length,
/// or fewer than two servers to fail over between).
#[must_use]
pub fn run_chaos(seed: u64, config: &ChaosConfig) -> ChaosReport {
    assert!(config.mds >= 2, "chaos needs at least two servers");
    assert!(config.ticks > 0 && config.tick_ms > 0, "empty schedule");
    let failure_timeout_ms = 5 * config.tick_ms;
    let lease_ms = 4 * config.tick_ms;
    let horizon_ms = config.ticks * config.tick_ms;
    let disrupt_until_ms = horizon_ms * 3 / 5;

    // Deterministic topology: placement and local index from the real
    // scheme over a seeded workload tree.
    let w = WorkloadBuilder::new(
        TraceProfile::dtr()
            .with_nodes(config.nodes)
            .with_operations(config.nodes),
    )
    .seed(seed)
    .build();
    let pop = w.popularity();
    let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
    scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(config.mds, 1.0));
    let tree = &w.tree;
    // BTreeMap: deterministic iteration order is what makes the journal
    // reproducible.
    let mut owned: BTreeMap<NodeId, MdsId> = scheme.local_index().iter().collect();
    let initial_roots: BTreeSet<NodeId> = owned.keys().copied().collect();
    let gl_node = tree.root(); // always replicated

    // Seeded schedule: kills with a restart after the failure timeout,
    // partition windows long enough to trigger false declarations.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut schedule: Vec<(u64, Disruption)> = Vec::new();
    let mut plan = FaultPlan::new(seed);
    // Crash-restart cycles are laid out back-to-back (never overlapping),
    // so every scheduled kill actually fires and gets its restart.
    let mut cursor = failure_timeout_ms;
    for _ in 0..config.kills {
        let at = cursor + rng.gen_range(1..=5) * config.tick_ms;
        let victim = MdsId(rng.gen_range(0..config.mds) as u16);
        let back_at = at + failure_timeout_ms + rng.gen_range(1..=5) * config.tick_ms;
        schedule.push((at, Disruption::Kill(victim)));
        schedule.push((back_at, Disruption::Restart(victim)));
        cursor = back_at + config.tick_ms;
    }
    assert!(
        cursor <= disrupt_until_ms,
        "schedule does not fit: raise ticks or lower kills"
    );
    let mut partition_windows: Vec<(u64, u64)> = Vec::new();
    for _ in 0..config.partitions {
        let from = rng.gen_range(config.tick_ms..disrupt_until_ms.max(config.tick_ms + 1));
        let until = from + failure_timeout_ms + rng.gen_range(1..=4) * config.tick_ms;
        let victim = rng.gen_range(0..config.mds) as u16;
        plan = plan.with_rule(FaultRule::partition(
            FaultScope::MonitorLink(victim),
            from,
            until,
        ));
        partition_windows.push((from, until));
    }
    schedule.sort_by_key(|&(at, _)| at);

    let registry = Arc::new(Registry::with_journal_capacity(64 * 1024));
    names::register_all(&registry);
    let injector = FaultInjector::new(&plan).with_registry(Arc::clone(&registry));
    let mut mon = Monitor::with_journal(
        MonitorConfig {
            heartbeat_interval_ms: config.tick_ms,
            failure_timeout_ms,
            ..MonitorConfig::default()
        },
        config.mds,
        Arc::clone(registry.journal()),
    );
    let locks = LockService::new(lease_ms);
    let cluster_spec = ClusterSpec::homogeneous(config.mds, 1.0);

    let mut killed = vec![false; config.mds];
    let mut declared: BTreeSet<usize> = BTreeSet::new();
    let mut gl_versions = vec![0u64; config.mds];
    let mut last_disruption_ms = 0u64;
    let mut next_sched = 0usize;
    let mut kills = 0usize;
    let mut restarts = 0usize;
    let mut rejoins = 0usize;
    let mut rejoins_with_claims = 0usize;
    let mut blocked_updates = 0u64;
    let mut violations: Vec<String> = Vec::new();

    for tick in 0..config.ticks {
        let now = tick * config.tick_ms;

        // 1. Scheduled disruptions due at this tick.
        while next_sched < schedule.len() && schedule[next_sched].0 <= now {
            let (_, d) = schedule[next_sched];
            next_sched += 1;
            last_disruption_ms = now;
            match d {
                Disruption::Kill(v) => {
                    if !killed[v.index()] {
                        // Adversarial crash: die holding the GL lock if
                        // it is free, wedging updates until lease expiry.
                        let _leaked = locks.try_acquire(gl_node, now);
                        killed[v.index()] = true;
                        kills += 1;
                    }
                }
                Disruption::Restart(v) => {
                    if killed[v.index()] {
                        // GL re-sync: a restarted replica copies the
                        // freshest committed state from the live ones
                        // before serving (mirrors LiveCluster::restart).
                        let freshest = gl_versions
                            .iter()
                            .enumerate()
                            .filter(|&(k, _)| !killed[k])
                            .map(|(_, &v)| v)
                            .max()
                            .unwrap_or(gl_versions[v.index()]);
                        gl_versions[v.index()] = freshest.max(gl_versions[v.index()]);
                        killed[v.index()] = false;
                        restarts += 1;
                    }
                }
            }
        }

        // 2. Heartbeats through the (possibly partitioned) monitor links.
        for (k, &dead) in killed.iter().enumerate() {
            if dead {
                continue;
            }
            let edge = NetEdge::MdsToMonitor(k as u16);
            if injector.decide(edge, now) == FaultDecision::Drop {
                continue; // partitioned away from the Monitor
            }
            let hb = Heartbeat {
                mds: MdsId(k as u16),
                load: owned.values().filter(|&&o| o.index() == k).count() as f64,
            };
            if let Some(ClusterEvent::MdsRecovered(back)) = mon.on_heartbeat(hb, now) {
                declared.remove(&back.index());
                let claimed = rejoin(&registry, &mut mon, tree, &mut owned, back, config.mds, now);
                rejoins += 1;
                if claimed > 0 {
                    rejoins_with_claims += 1;
                }
                registry.journal().record(EventKind::MdsRejoined {
                    mds: back.0,
                    claimed: claimed as u64,
                });
            }
        }

        // 3. Failure detection and fail-over.
        for event in mon.detect_failures(now) {
            let ClusterEvent::MdsFailed(dead) = event else {
                continue;
            };
            declared.insert(dead.index());
            last_disruption_ms = now;
            let owned_vec = subtree_table(tree, &owned);
            let migrations = mon.plan_failover(dead, &owned_vec, &cluster_spec, now);
            apply_migrations(&registry, tree, &mut owned, &migrations);
        }

        // 4. One global-layer update per tick through the lock service
        // (any live server can lead the commit).
        if killed.iter().any(|&dead| !dead) {
            match locks.try_acquire(gl_node, now) {
                Some(token) => {
                    for (k, v) in gl_versions.iter_mut().enumerate() {
                        if !killed[k] {
                            *v += 1; // commit propagates to live replicas only
                        }
                    }
                    let released = locks.release(token);
                    debug_assert!(released, "fresh token releases cleanly");
                }
                None => blocked_updates += 1, // wedged by a crashed holder
            }
        }

        // 5. Invariant check at quiesce points.
        let partitioned = partition_windows
            .iter()
            .any(|&(from, until)| now >= from && now < until);
        let undetected_crash = killed
            .iter()
            .enumerate()
            .any(|(k, &dead)| dead && !declared.contains(&k));
        let settled = now >= last_disruption_ms + failure_timeout_ms + 2 * config.tick_ms;
        if !partitioned && !undetected_crash && settled {
            check_invariants(
                tick,
                &owned,
                &initial_roots,
                &killed,
                &gl_versions,
                &mut violations,
            );
        }
    }

    // Final check: the schedule restarts every victim, so the run must
    // end healthy regardless of where the last quiesce point fell.
    check_invariants(
        config.ticks,
        &owned,
        &initial_roots,
        &killed,
        &gl_versions,
        &mut violations,
    );

    let snap = registry.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(k, _)| k.name == name)
            .map_or(0, |&(_, v)| v)
    };
    ChaosReport {
        seed,
        ticks: config.ticks,
        kills,
        restarts,
        partitions: partition_windows.len(),
        rejoins,
        rejoins_with_claims,
        blocked_updates,
        violations,
        journal: snap
            .events
            .iter()
            .map(|e| e.kind)
            .filter(|k| !matches!(k, EventKind::Heartbeat { .. }))
            .collect(),
        faults_dropped: counter(names::FAULTS_DROPPED),
        faults_delayed: counter(names::FAULTS_DELAYED),
        faults_duplicated: counter(names::FAULTS_DUPLICATED),
    }
}

/// The ownership table as the Monitor's rebalancing APIs want it:
/// subtree descriptors (size-weighted popularity keeps weights positive
/// and deterministic) paired with their current owner.
fn subtree_table(tree: &NamespaceTree, owned: &BTreeMap<NodeId, MdsId>) -> Vec<(Subtree, MdsId)> {
    owned
        .iter()
        .map(|(&root, &owner)| {
            let parent = tree.node(root).and_then(|n| n.parent()).unwrap_or(root);
            (
                Subtree {
                    root,
                    parent,
                    popularity: tree.subtree_size(root) as f64,
                    size: tree.subtree_size(root),
                },
                owner,
            )
        })
        .collect()
}

/// Rewrites the ownership table for a batch of migrations, journaling
/// each re-homing as a shed/claim pair.
fn apply_migrations(
    registry: &Registry,
    tree: &NamespaceTree,
    owned: &mut BTreeMap<NodeId, MdsId>,
    migrations: &[Migration],
) {
    for mg in migrations {
        owned.insert(mg.node, mg.to);
        let size = tree.subtree_size(mg.node) as u64;
        let subtree = mg.node.index() as u64;
        registry.journal().record(EventKind::SubtreeShed {
            from: mg.from.0,
            subtree,
            size,
            popularity: size as f64,
        });
        registry.journal().record(EventKind::SubtreeClaimed {
            to: mg.to.0,
            subtree,
            size,
            popularity: size as f64,
        });
    }
}

/// The claiming half of the rejoin protocol (mirrors the live runtime's
/// `rejoin_claims`): run a pending-pool rebalancing round over the live
/// capacities; if the load is too even for the adjuster to route
/// anything to the rejoiner, the owner with the most subtrees hands one
/// over so a rejoined server never sits idle. Returns claims by `back`.
fn rejoin(
    registry: &Registry,
    mon: &mut Monitor,
    tree: &NamespaceTree,
    owned: &mut BTreeMap<NodeId, MdsId>,
    back: MdsId,
    m: usize,
    now: u64,
) -> usize {
    let owned_vec = subtree_table(tree, owned);
    if owned_vec.is_empty() {
        return 0;
    }
    // Dead servers get a vanishing capacity (ClusterSpec requires
    // strictly positive) so the adjuster routes essentially nothing at
    // them; migrations onto a still-dead server are filtered anyway.
    let capacities: Vec<f64> = (0..m)
        .map(|k| {
            let id = MdsId(k as u16);
            if id == back || mon.is_alive(id, now) {
                1.0
            } else {
                1e-9
            }
        })
        .collect();
    let mut migrations = mon.rebalance(&owned_vec, &ClusterSpec::new(capacities));
    migrations.retain(|mg| mg.to == back || mon.is_alive(mg.to, now));
    if !migrations.iter().any(|mg| mg.to == back) {
        // Deterministic fallback: the busiest other live owner (most
        // subtrees, ties to the lowest id) hands over its first subtree.
        let mut per_owner: BTreeMap<MdsId, usize> = BTreeMap::new();
        for (_, owner) in &owned_vec {
            if *owner != back && mon.is_alive(*owner, now) {
                *per_owner.entry(*owner).or_insert(0) += 1;
            }
        }
        let busiest = per_owner
            .iter()
            .max_by_key(|(id, n)| (**n, std::cmp::Reverse(id.0)))
            .map(|(&id, _)| id);
        if let Some(busiest) = busiest {
            if let Some((sub, _)) = owned_vec.iter().find(|(_, o)| *o == busiest) {
                migrations.push(Migration {
                    node: sub.root,
                    from: busiest,
                    to: back,
                });
            }
        }
    }
    apply_migrations(registry, tree, owned, &migrations);
    migrations.iter().filter(|mg| mg.to == back).count()
}

/// One invariant sweep; violations are appended with their tick.
fn check_invariants(
    tick: u64,
    owned: &BTreeMap<NodeId, MdsId>,
    initial_roots: &BTreeSet<NodeId>,
    killed: &[bool],
    gl_versions: &[u64],
    violations: &mut Vec<String>,
) {
    let roots: BTreeSet<NodeId> = owned.keys().copied().collect();
    if roots != *initial_roots {
        for lost in initial_roots.difference(&roots) {
            violations.push(format!("tick {tick}: subtree {} lost", lost.index()));
        }
        for extra in roots.difference(initial_roots) {
            violations.push(format!(
                "tick {tick}: phantom subtree {} appeared",
                extra.index()
            ));
        }
    }
    for (&root, &owner) in owned {
        if killed.get(owner.index()).copied().unwrap_or(true) {
            violations.push(format!(
                "tick {tick}: subtree {} owned by crashed mds{}",
                root.index(),
                owner.0
            ));
        }
    }
    let live: Vec<(usize, u64)> = gl_versions
        .iter()
        .enumerate()
        .filter(|&(k, _)| !killed[k])
        .map(|(k, &v)| (k, v))
        .collect();
    if live.windows(2).any(|w| w[0].1 != w[1].1) {
        violations.push(format!("tick {tick}: GL replica divergence {live:?}"));
    }
}

// ---------------------------------------------------------------------------
// Store chaos: the durability counterpart of `run_chaos`.

/// Shape of a store-chaos run. The schedule (who crashes when, how each
/// crash tears the log, where the bit-flips land) is derived
/// deterministically from the seed passed to [`run_store_chaos`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreChaosConfig {
    /// Stores (MDSs) under test.
    pub mds: usize,
    /// Virtual steps; every store appends one record per step.
    pub steps: u64,
    /// Virtual milliseconds per step (the clock storage-fault rule
    /// windows are evaluated against).
    pub step_ms: u64,
    /// Crash-recover cycles to schedule across the run.
    pub crashes: usize,
    /// Bit-flip corruption probes to schedule in the second half.
    pub corrupt_probes: usize,
    /// WAL segment size; small so rotation and snapshot pruning are
    /// exercised by a short run.
    pub segment_bytes: u64,
}

impl Default for StoreChaosConfig {
    fn default() -> Self {
        StoreChaosConfig {
            mds: 3,
            steps: 240,
            step_ms: 10,
            crashes: 6,
            corrupt_probes: 2,
            segment_bytes: 2048,
        }
    }
}

/// What a store-chaos run did and found.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreChaosReport {
    /// The seed the schedule was derived from.
    pub seed: u64,
    /// Steps executed.
    pub steps: u64,
    /// Records appended across all stores.
    pub records_appended: u64,
    /// Explicit group commits performed.
    pub syncs: u64,
    /// Snapshots written.
    pub snapshots: u64,
    /// Crash-recover cycles executed.
    pub crashes: usize,
    /// Recoveries that truncated a torn WAL tail. Not disjoint from
    /// [`StoreChaosReport::partial_fsyncs`]: a lying fsync usually cuts
    /// the segment mid-frame, so the same crash counts in both.
    pub torn_crashes: usize,
    /// Crashes struck by an injected lying fsync (a durable suffix was
    /// destroyed behind the store's back).
    pub partial_fsyncs: usize,
    /// Partial-fsync damage the store refused to open (the fail-loud
    /// path: lost durable writes detected, no state invented).
    pub loud_failures: usize,
    /// Unsynced (or fault-destroyed) records legitimately lost across
    /// all crashes.
    pub records_lost: u64,
    /// Corruption probes actually executed (a probe needs at least one
    /// multi-frame durable segment to flip a bit in).
    pub corrupt_probes: usize,
    /// Probes whose bit-flip the recovery scan caught as corruption.
    pub corruptions_detected: usize,
    /// Contract violations (empty = the store survived the schedule).
    pub violations: Vec<String>,
    /// The run's event journal, in order; recovery timings are
    /// normalised to zero so two same-seed runs compare equal.
    pub journal: Vec<EventKind>,
}

static STORE_CHAOS_SEQ: AtomicU64 = AtomicU64::new(0);

fn store_chaos_root() -> PathBuf {
    std::env::temp_dir().join(format!(
        "d2tree-storechaos-{}-{}",
        std::process::id(),
        STORE_CHAOS_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// One seeded record with plausible field ranges; collisions in `node`
/// and `root` keep the version-gating and last-writer-wins paths hot.
fn random_store_record(rng: &mut StdRng) -> MdsRecord {
    match rng.gen_range(0..4u8) {
        0 => MdsRecord::AttrCommit {
            node: rng.gen_range(0..512),
            gl: rng.gen_bool(0.25),
            attr: AttrState {
                version: rng.gen_range(1..1_000),
                mode: 0o644,
                uid: rng.gen_range(0..8),
                gid: rng.gen_range(0..8),
                size: rng.gen_range(0..1 << 20),
                mtime: rng.gen_range(0..1 << 30),
            },
        },
        1 => MdsRecord::Ownership {
            root: rng.gen_range(0..128),
            acquired: rng.gen_bool(0.5),
        },
        2 => MdsRecord::GlRecut {
            version: rng.gen_range(1..1_000),
            promoted: rng.gen_range(0..16),
            demoted: rng.gen_range(0..16),
        },
        _ => MdsRecord::Popularity {
            root: rng.gen_range(0..128),
            bits: f64::from(rng.gen_range(0u32..1 << 20)).to_bits(),
        },
    }
}

fn replay_prefix(history: &[MdsRecord]) -> MdsState {
    let mut state = MdsState::default();
    for record in history {
        state.apply(record);
    }
    state
}

/// WAL segment files in a store directory, in LSN order.
fn wal_segments_sorted(dir: &Path) -> Vec<PathBuf> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(hex) = name
                .strip_prefix("wal-")
                .and_then(|s| s.strip_suffix(".log"))
            {
                if let Ok(lsn) = u64::from_str_radix(hex, 16) {
                    found.push((lsn, entry.path()));
                }
            }
        }
    }
    found.sort();
    found.into_iter().map(|(_, path)| path).collect()
}

/// Flips one CRC-covered payload bit in a segment's first frame, but
/// only when a second complete frame follows it — that guarantees the
/// recovery scan must call the damage corruption, never a torn tail.
/// Returns whether a bit was flipped.
fn flip_bit_in_first_frame(path: &Path) -> std::io::Result<bool> {
    const MAGIC: usize = 8;
    const HEADER: usize = 8; // len u32 + crc u32
    let mut bytes = fs::read(path)?;
    if bytes.len() < MAGIC + HEADER {
        return Ok(false);
    }
    let len = u32::from_be_bytes([
        bytes[MAGIC],
        bytes[MAGIC + 1],
        bytes[MAGIC + 2],
        bytes[MAGIC + 3],
    ]) as usize;
    let first_end = MAGIC + HEADER + len;
    if bytes.len() < first_end + HEADER {
        return Ok(false);
    }
    let len2 = u32::from_be_bytes([
        bytes[first_end],
        bytes[first_end + 1],
        bytes[first_end + 2],
        bytes[first_end + 3],
    ]) as usize;
    if bytes.len() < first_end + HEADER + len2 {
        return Ok(false);
    }
    bytes[MAGIC + HEADER] ^= 0x01; // first payload byte, inside the CRC
    fs::write(path, bytes)?;
    Ok(true)
}

/// Copies a (synced) store directory aside, flips a durable bit in it
/// and checks the store refuses to open. `None` = nothing flippable
/// yet; `Some(detected)` otherwise.
fn corrupt_probe(src: &Path, probe: &Path, config: StoreConfig) -> Option<bool> {
    fs::create_dir_all(probe).ok()?;
    for entry in fs::read_dir(src).ok()?.flatten() {
        fs::copy(entry.path(), probe.join(entry.file_name())).ok()?;
    }
    let flipped = wal_segments_sorted(probe)
        .iter()
        .any(|seg| flip_bit_in_first_frame(seg).unwrap_or(false));
    if !flipped {
        return None;
    }
    Some(matches!(MdsStore::open(probe, config), Err(e) if e.is_corrupt()))
}

/// Outcome of one crash-recover cycle.
struct CrashOutcome {
    store: MdsStore,
    lost: u64,
    torn: bool,
    loud_failure: bool,
}

/// Crashes `store` according to `fault`, reopens the directory and
/// checks the recovery contract: the recovered state must be the exact
/// replay of `history[..next_lsn]`, with `next_lsn` at or above the
/// fsynced floor unless the fault destroyed durable bytes. `history`
/// and `synced` are truncated to the recovered reality.
#[allow(clippy::too_many_arguments)]
fn crash_recover_check(
    dir: &Path,
    store_config: StoreConfig,
    registry: &Arc<Registry>,
    mds: u16,
    store: MdsStore,
    history: &mut Vec<MdsRecord>,
    synced: &mut usize,
    fault: Option<StorageFault>,
    rng: &mut StdRng,
    step: u64,
    violations: &mut Vec<String>,
) -> CrashOutcome {
    let mut floor = *synced;
    let mut durable_destroyed = false;
    match fault {
        // Clean crash: the whole unsynced pending buffer vanishes.
        None => store.simulate_crash(0).expect("crash"),
        // Torn write: a prefix of the pending buffer reaches the
        // platter, usually cutting the last frame mid-way.
        Some(StorageFault::TornWrite) => {
            let pending = store.pending_bytes();
            let keep = if pending == 0 {
                0
            } else {
                rng.gen_range(0..pending)
            };
            store.simulate_crash(keep).expect("crash");
        }
        // Lying fsync: the store syncs, the drive reports success, and
        // a suffix of the segment is destroyed anyway.
        Some(StorageFault::PartialFsync | StorageFault::CorruptRecord) => {
            let mut store = store;
            store.sync().expect("sync");
            store.simulate_crash(0).expect("crash");
            if let Some(tail) = wal_segments_sorted(dir).pop() {
                let len = fs::metadata(&tail).map(|m| m.len()).unwrap_or(0);
                if len > 8 {
                    let cut = rng.gen_range(1..=len.min(64));
                    let file = fs::OpenOptions::new()
                        .write(true)
                        .open(&tail)
                        .expect("reopen tail segment");
                    file.set_len(len - cut).expect("truncate tail segment");
                    durable_destroyed = true;
                    floor = 0;
                }
            }
        }
    }

    let (reopened, info) = match MdsStore::open(dir, store_config) {
        Ok(pair) => pair,
        Err(e) if e.is_corrupt() && durable_destroyed => {
            // The fail-loud path: recovery noticed durable writes are
            // missing (e.g. the WAL regressed behind its snapshot) and
            // refused to invent state. Start the store over.
            let lost = history.len() as u64;
            history.clear();
            *synced = 0;
            fs::remove_dir_all(dir).expect("wipe corrupt store");
            let (fresh, _) = MdsStore::open(dir, store_config).expect("reopen wiped store");
            return CrashOutcome {
                store: fresh.with_registry(registry, mds),
                lost,
                torn: false,
                loud_failure: true,
            };
        }
        Err(e) => panic!("store for mds{mds} failed to reopen after crash: {e}"),
    };

    let recovered = info.next_lsn as usize;
    if recovered > history.len() {
        violations.push(format!(
            "step {step}: mds{mds} recovered {recovered} records but only {} were appended",
            history.len()
        ));
    } else {
        if recovered < floor {
            violations.push(format!(
                "step {step}: mds{mds} lost fsynced records: recovered {recovered} < floor {floor}"
            ));
        }
        if *reopened.state() != replay_prefix(&history[..recovered]) {
            violations.push(format!(
                "step {step}: mds{mds} recovered state is not the exact replay of its first {recovered} records"
            ));
        }
    }
    let keep = recovered.min(history.len());
    let lost = (history.len() - keep) as u64;
    history.truncate(keep);
    *synced = keep;
    registry.journal().record(EventKind::StoreRecovered {
        mds,
        records: info.records_replayed,
        torn_bytes: info.torn_bytes,
        recovery_ms: 0, // normalised: keeps same-seed journals identical
    });
    CrashOutcome {
        store: reopened.with_registry(registry, mds),
        lost,
        torn: info.torn_bytes > 0,
        loud_failure: false,
    }
}

/// Runs one seeded store-chaos schedule to completion. Stores live in
/// fresh directories under the system temp dir and are removed before
/// returning.
///
/// # Panics
///
/// Panics if `config` is degenerate (no stores or steps, or more
/// crashes/probes than the schedule can place) or on I/O errors in the
/// scratch directory.
#[must_use]
pub fn run_store_chaos(seed: u64, config: &StoreChaosConfig) -> StoreChaosReport {
    assert!(config.mds >= 1, "store chaos needs at least one store");
    assert!(config.steps > 0 && config.step_ms > 0, "empty schedule");
    assert!(
        config.crashes <= config.steps as usize / 4,
        "schedule does not fit: raise steps or lower crashes"
    );
    assert!(
        config.corrupt_probes <= config.steps as usize / 8,
        "schedule does not fit: raise steps or lower corrupt_probes"
    );

    let root = store_chaos_root();
    let mut store_config = StoreConfig::manual();
    store_config.segment_bytes = config.segment_bytes;

    let registry = Arc::new(Registry::with_journal_capacity(64 * 1024));
    names::register_all(&registry);
    // Crash points consult the storage rules: ~50% torn writes, ~25%
    // lying fsyncs, the rest crash cleanly between frames.
    let plan = FaultPlan::new(seed)
        .with_storage_rule(StorageFaultRule::new(StorageFault::TornWrite).with_probability(0.5))
        .with_storage_rule(StorageFaultRule::new(StorageFault::PartialFsync).with_probability(0.5));
    let injector = FaultInjector::new(&plan).with_registry(Arc::clone(&registry));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5851_f42d_4c95_7f2d);

    let mut stores: Vec<MdsStore> = (0..config.mds)
        .map(|k| {
            let (store, _) = MdsStore::open(root.join(format!("mds-{k}")), store_config)
                .expect("fresh store opens");
            store.with_registry(&registry, k as u16)
        })
        .collect();
    let mut history: Vec<Vec<MdsRecord>> = vec![Vec::new(); config.mds];
    let mut synced: Vec<usize> = vec![0; config.mds];

    // Seeded schedule: crashes anywhere past warm-up, probes in the
    // second half (so there is durable multi-frame data to flip).
    let mut crash_steps: BTreeMap<u64, usize> = BTreeMap::new();
    while crash_steps.len() < config.crashes {
        let at = rng.gen_range(1..config.steps);
        let victim = rng.gen_range(0..config.mds);
        crash_steps.entry(at).or_insert(victim);
    }
    let mut probe_steps: BTreeMap<u64, usize> = BTreeMap::new();
    while probe_steps.len() < config.corrupt_probes {
        let at = rng.gen_range(config.steps / 2..config.steps);
        probe_steps
            .entry(at)
            .or_insert(rng.gen_range(0..config.mds));
    }

    let mut records_appended = 0u64;
    let mut syncs = 0u64;
    let mut snapshots = 0u64;
    let mut crashes = 0usize;
    let mut torn_crashes = 0usize;
    let mut partial_fsyncs = 0usize;
    let mut loud_failures = 0usize;
    let mut records_lost = 0u64;
    let mut probes_run = 0usize;
    let mut corruptions_detected = 0usize;
    let mut violations: Vec<String> = Vec::new();

    for step in 0..config.steps {
        let now = step * config.step_ms;

        // 1. Every store appends one record.
        for (k, store) in stores.iter_mut().enumerate() {
            let record = random_store_record(&mut rng);
            store.append(record).expect("append");
            history[k].push(record);
            records_appended += 1;
        }

        // 2. Seeded group commits and the occasional snapshot.
        for k in 0..config.mds {
            if rng.gen_bool(0.25) {
                stores[k].sync().expect("sync");
                synced[k] = history[k].len();
                syncs += 1;
            }
        }
        if rng.gen_bool(0.05) {
            let k = rng.gen_range(0..config.mds);
            stores[k].snapshot().expect("snapshot");
            synced[k] = history[k].len();
            snapshots += 1;
        }

        // 3. Scheduled crash: the storage rules pick how it tears.
        if let Some(&victim) = crash_steps.get(&step) {
            let fault = injector.decide_storage(victim as u16, now);
            let dir = root.join(format!("mds-{victim}"));
            let store = stores.remove(victim);
            let outcome = crash_recover_check(
                &dir,
                store_config,
                &registry,
                victim as u16,
                store,
                &mut history[victim],
                &mut synced[victim],
                fault,
                &mut rng,
                step,
                &mut violations,
            );
            stores.insert(victim, outcome.store);
            crashes += 1;
            records_lost += outcome.lost;
            if outcome.torn {
                torn_crashes += 1;
            }
            if matches!(fault, Some(StorageFault::PartialFsync)) {
                partial_fsyncs += 1;
            }
            if outcome.loud_failure {
                loud_failures += 1;
            }
        }

        // 4. Scheduled corruption probe against a synced copy.
        if let Some(&victim) = probe_steps.get(&step) {
            stores[victim].sync().expect("sync");
            synced[victim] = history[victim].len();
            let probe_dir = root.join(format!("probe-{step}"));
            if let Some(detected) = corrupt_probe(stores[victim].dir(), &probe_dir, store_config) {
                probes_run += 1;
                registry
                    .counter(MetricKey::global(names::FAULTS_STORAGE))
                    .inc();
                registry.journal().record(EventKind::FaultInjected {
                    fault: FaultKind::CorruptRecord,
                    mds: victim as u16,
                });
                if detected {
                    corruptions_detected += 1;
                } else {
                    violations.push(format!(
                        "step {step}: bit-flip in mds{victim}'s durable WAL went undetected"
                    ));
                }
            }
            let _ = fs::remove_dir_all(&probe_dir);
        }
    }

    // Final sweep: a clean shutdown and reopen must reproduce every
    // store's full history bit-for-bit.
    for (k, store) in stores.into_iter().enumerate() {
        let mut store = store;
        store.sync().expect("final sync");
        let dir = store.dir().to_path_buf();
        drop(store);
        let (reopened, info) = MdsStore::open(&dir, store_config).expect("final reopen succeeds");
        let expected = replay_prefix(&history[k]);
        if info.next_lsn as usize != history[k].len() || *reopened.state() != expected {
            violations.push(format!(
                "final: mds{k} reopened with {} records, wanted {}",
                info.next_lsn,
                history[k].len()
            ));
        } else if reopened.state().encode() != expected.encode() {
            violations.push(format!("final: mds{k} state encoding diverged"));
        }
    }
    let _ = fs::remove_dir_all(&root);

    StoreChaosReport {
        seed,
        steps: config.steps,
        records_appended,
        syncs,
        snapshots,
        crashes,
        torn_crashes,
        partial_fsyncs,
        loud_failures,
        records_lost,
        corrupt_probes: probes_run,
        corruptions_detected,
        violations,
        journal: registry.snapshot().events.iter().map(|e| e.kind).collect(),
    }
}

// ---------------------------------------------------------------------------
// Monitor chaos: leader failover of the replicated control plane.

/// Shape of a monitor-chaos run: a seeded schedule of Monitor-replica
/// crashes, replica-link partitions, forced split votes and data-plane
/// MDS failures, replayed against the replicated control plane of
/// [`crate::consensus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorChaosConfig {
    /// Data-plane cluster size (MDS servers sending heartbeats).
    pub mds: usize,
    /// Monitor replicas (3 tolerates one crash).
    pub replicas: usize,
    /// Namespace-tree size the placement is built over.
    pub nodes: usize,
    /// Virtual ticks to run; disruptions land in the first 60%.
    pub ticks: u64,
    /// Virtual milliseconds per tick.
    pub tick_ms: u64,
    /// Monitor-leader crash/restart cycles to schedule.
    pub monitor_kills: usize,
    /// Replica-link partition windows (one replica loses its inbound
    /// peer traffic for a while — long enough to force a re-election
    /// when the victim is the leader).
    pub peer_partitions: usize,
    /// Forced split votes (every live replica campaigns at once; the
    /// randomized timeouts must untangle it).
    pub split_votes: usize,
    /// Data-plane MDS crash/restart cycles, so failover and rebalance
    /// decisions flow through the replicated log while the control
    /// plane itself is being disrupted.
    pub mds_kills: usize,
    /// When set, a window late in the run crashes 2 of 3 replicas: the
    /// cluster must degrade to read-only serving (no panics, reads keep
    /// answering, writes blocked) and recover when quorum returns.
    pub quorum_loss: bool,
}

impl Default for MonitorChaosConfig {
    fn default() -> Self {
        MonitorChaosConfig {
            mds: 4,
            replicas: 3,
            nodes: 400,
            ticks: 900,
            tick_ms: 10,
            monitor_kills: 2,
            peer_partitions: 1,
            split_votes: 1,
            mds_kills: 1,
            quorum_loss: false,
        }
    }
}

/// What a monitor-chaos run did and found.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorChaosReport {
    /// The seed the schedule was derived from.
    pub seed: u64,
    /// Ticks executed.
    pub ticks: u64,
    /// Monitor-replica crashes injected.
    pub monitor_kills: usize,
    /// Monitor-replica restarts performed.
    pub monitor_restarts: usize,
    /// Elections started across all replicas (`elections_total`).
    pub elections: u64,
    /// Distinct leader handovers (`leader_changes_total`).
    pub leader_changes: u64,
    /// Entries committed through the replicated log (`log_commits_total`).
    pub commits: u64,
    /// Leases granted by the replicated lock state machine.
    pub grants: u64,
    /// Global-layer writes committed under a valid lease.
    pub gl_writes: u64,
    /// Writes rejected for stale or expired fencing tokens.
    pub fence_rejections: u64,
    /// Deliberate expired-fence probes that were correctly rejected.
    pub stale_probes_confirmed: usize,
    /// Control-plane submissions that were redirected or re-aimed
    /// (`monitor_retries_total`).
    pub monitor_retries: u64,
    /// Write attempts that found no leader to accept them (read-only
    /// degradation in action).
    pub blocked_writes: u64,
    /// Longest observed leader-loss → re-election gap, in virtual ms.
    pub max_failover_ms: u64,
    /// Subtree re-homings committed through the log.
    pub migrations_committed: u64,
    /// Safety violations (empty = the control plane survived).
    pub violations: Vec<String>,
    /// The shared journal (heartbeats elided), in order. Two runs with
    /// the same seed and config produce identical journals.
    pub journal: Vec<EventKind>,
}

static MONITOR_CHAOS_SEQ: AtomicU64 = AtomicU64::new(0);

fn monitor_chaos_root() -> PathBuf {
    std::env::temp_dir().join(format!(
        "d2tree-monchaos-{}-{}",
        std::process::id(),
        MONITOR_CHAOS_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The GL writer drives its lease lifecycle through these phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GlPhase {
    Idle,
    Acquiring,
    Holding {
        fence: u64,
    },
    Writing {
        fence: u64,
    },
    /// Deliberately sitting on an expiring lease to probe the fencing
    /// path: the write is submitted only after `expires_at_ms`.
    StaleWait {
        fence: u64,
        expires_at_ms: u64,
    },
    StaleProbe {
        fence: u64,
    },
}

/// MDS id the GL writer submits lease operations as.
const GL_WRITER: u16 = 0;

/// Runs one seeded monitor-chaos schedule to completion.
///
/// # Panics
///
/// Panics if `config` is degenerate (fewer than 2 MDSs or replicas,
/// zero ticks or tick length, or a schedule that does not fit the
/// disruption window).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_monitor_chaos(seed: u64, config: &MonitorChaosConfig) -> MonitorChaosReport {
    assert!(config.mds >= 2, "monitor chaos needs at least two MDSs");
    assert!(
        config.replicas >= 2,
        "a replicated control plane needs peers"
    );
    assert!(config.ticks > 0 && config.tick_ms > 0, "empty schedule");
    let tick_ms = config.tick_ms;
    let horizon_ms = config.ticks * tick_ms;
    let disrupt_until_ms = horizon_ms * 3 / 5;
    let failure_timeout_ms = 5 * tick_ms;
    let lease_ms = 8 * tick_ms;
    let timing = ConsensusTiming {
        heartbeat_ms: 2 * tick_ms,
        election_min_ms: 10 * tick_ms,
        election_jitter_ms: 10 * tick_ms,
        net_delay_ms: 1,
    };
    let reelect_slack_ms = timing.reelect_bound_ms() + 2 * tick_ms;

    // Deterministic topology, as in `run_chaos`.
    let w = WorkloadBuilder::new(
        TraceProfile::dtr()
            .with_nodes(config.nodes)
            .with_operations(config.nodes),
    )
    .seed(seed)
    .build();
    let pop = w.popularity();
    let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
    scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(config.mds, 1.0));
    let tree = &w.tree;
    let mut owned: BTreeMap<NodeId, MdsId> = scheme.local_index().iter().collect();
    let initial_roots: BTreeSet<NodeId> = owned.keys().copied().collect();
    let gl_node = tree.root().index() as u64;
    let cluster_spec = ClusterSpec::homogeneous(config.mds, 1.0);

    // Seeded schedule. Monitor kills are aimed at whoever leads at
    // fire time (maximally adversarial); restarts come after the
    // re-election bound so each crash forces a full failover.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5de3_4d4b_a2c8_b711);
    let mut kill_windows: Vec<(u64, u64)> = Vec::new();
    let mut cursor = timing.election_min_ms + timing.election_jitter_ms + 2 * tick_ms;
    for _ in 0..config.monitor_kills {
        let at = cursor + rng.gen_range(1..=5) * tick_ms;
        let back_at = at + reelect_slack_ms + rng.gen_range(1..=5) * tick_ms;
        kill_windows.push((at, back_at));
        cursor = back_at + 4 * tick_ms;
    }
    assert!(
        cursor <= disrupt_until_ms,
        "monitor-kill schedule does not fit: raise ticks or lower kills"
    );
    let mut plan = FaultPlan::new(seed);
    let mut partition_windows: Vec<(u64, u64)> = Vec::new();
    for _ in 0..config.peer_partitions {
        let from = rng.gen_range(tick_ms..disrupt_until_ms.max(tick_ms + 1));
        let until = from + reelect_slack_ms + rng.gen_range(1..=4) * tick_ms;
        let victim = rng.gen_range(0..config.replicas) as u16;
        plan = plan.with_rule(FaultRule::partition(
            FaultScope::PeerLink(victim),
            from,
            until,
        ));
        partition_windows.push((from, until));
    }
    let split_vote_at: Vec<u64> = (0..config.split_votes)
        .map(|_| rng.gen_range(tick_ms..disrupt_until_ms.max(tick_ms + 1)))
        .collect();
    let mut mds_kill_windows: Vec<(u64, u64, MdsId)> = Vec::new();
    for _ in 0..config.mds_kills {
        let at = rng.gen_range(failure_timeout_ms..disrupt_until_ms.max(failure_timeout_ms + 1));
        let back_at = at + failure_timeout_ms + rng.gen_range(2..=6) * tick_ms;
        // Never the GL writer: its lease lifecycle must keep running
        // through every disruption.
        let victim = MdsId(rng.gen_range(1..config.mds) as u16);
        mds_kill_windows.push((at, back_at, victim));
    }
    // Quorum loss lands after the disruption window so it cannot overlap
    // the single-kill schedules.
    let quorum_window = config.quorum_loss.then(|| {
        let from = disrupt_until_ms + 5 * tick_ms;
        let until = from + 20 * tick_ms;
        (from, until)
    });
    let stale_probe_after_ms = horizon_ms / 2;

    let registry = Arc::new(Registry::with_journal_capacity(64 * 1024));
    names::register_all(&registry);
    let injector = FaultInjector::new(&plan).with_registry(Arc::clone(&registry));
    let wal_root = monitor_chaos_root();
    let mut cluster = ConsensusCluster::new(
        seed,
        ConsensusConfig {
            replicas: config.replicas,
            timing,
            lease_ms,
            wal_root: Some(wal_root.clone()),
            segment_bytes: 16 * 1024,
        },
    )
    .with_registry(Arc::clone(&registry))
    .with_journal(Arc::clone(registry.journal()));
    // One Monitor state machine per replica, each with a private journal
    // (only committed membership decisions reach the shared journal,
    // via the observer).
    let mut monitors: Vec<Monitor> = (0..config.replicas)
        .map(|_| {
            Monitor::new(
                MonitorConfig {
                    heartbeat_interval_ms: tick_ms,
                    failure_timeout_ms,
                    ..MonitorConfig::default()
                },
                config.mds,
            )
        })
        .collect();
    let mut client = LeaderClient::new(seed, config.replicas as u16).with_registry(&registry);

    let mut mds_killed = vec![false; config.mds];
    let mut registered = false;
    let mut known_leader: Option<u16> = None;
    let mut reelect_deadline: Option<u64> = None;
    let mut pending_failover: BTreeSet<u64> = BTreeSet::new();
    let mut gl_phase = GlPhase::Idle;
    // When the writer entered its current in-flight phase, and how long
    // it waits for the commit before assuming the proposal died with a
    // leader and re-issuing (failover-sized, plus the lease the retry
    // may have to wait out).
    let mut phase_since = 0u64;
    let give_up_ms = reelect_slack_ms + 2 * lease_ms;
    let mut stale_probe_done = false;
    let mut stale_probes_confirmed = 0usize;
    let mut monitor_kills = 0usize;
    let mut monitor_restarts = 0usize;
    let mut gl_writes = 0u64;
    let mut blocked_writes = 0u64;
    let mut migrations_committed = 0u64;
    let mut max_failover_ms = 0u64;
    let mut last_fence = 0u64;
    let mut next_kill = 0usize;
    let mut next_mds_kill = 0usize;
    let mut next_split = 0usize;
    let mut violations: Vec<String> = Vec::new();

    for tick in 0..config.ticks {
        let now = tick * tick_ms;
        let in_partition = partition_windows
            .iter()
            .any(|&(from, until)| now >= from && now < until);
        let in_quorum_loss = quorum_window.is_some_and(|(from, until)| now >= from && now < until);

        // 1. Scheduled control-plane disruptions.
        if next_kill < kill_windows.len() && now >= kill_windows[next_kill].0 {
            let (_, back_at) = kill_windows[next_kill];
            if now >= back_at {
                // Restart whoever is down from this window.
                for r in 0..config.replicas as u16 {
                    if !cluster.is_up(r) && cluster.restart(r, now) {
                        monitor_restarts += 1;
                    }
                }
                next_kill += 1;
            } else if cluster.up_count() == config.replicas {
                // Kill the current leader (or replica 0 while leaderless).
                let victim = cluster.leader().unwrap_or(0);
                if cluster.kill(victim, now) {
                    monitor_kills += 1;
                    known_leader = None;
                    pending_failover.clear();
                    reelect_deadline = Some(now + reelect_slack_ms);
                }
            }
        }
        if let Some((from, until)) = quorum_window {
            if now >= from && now < until && cluster.up_count() == config.replicas {
                // Crash everything but one replica: quorum is gone.
                let survivor = cluster
                    .leader()
                    .map_or(0, |l| (l + 1) % config.replicas as u16);
                for r in 0..config.replicas as u16 {
                    if r != survivor && cluster.kill(r, now) {
                        monitor_kills += 1;
                    }
                }
                known_leader = None;
                pending_failover.clear();
                reelect_deadline = None;
            }
            if now >= until && cluster.up_count() < config.replicas {
                for r in 0..config.replicas as u16 {
                    if !cluster.is_up(r) && cluster.restart(r, now) {
                        monitor_restarts += 1;
                    }
                }
                reelect_deadline = Some(now + reelect_slack_ms);
            }
        }
        if next_split < split_vote_at.len() && now >= split_vote_at[next_split] {
            next_split += 1;
            cluster.force_split_vote(now);
            known_leader = None;
            reelect_deadline = Some(now + reelect_slack_ms);
        }

        // 2. Scheduled data-plane disruptions.
        if next_mds_kill < mds_kill_windows.len() {
            let (at, back_at, victim) = mds_kill_windows[next_mds_kill];
            if now >= back_at {
                mds_killed[victim.index()] = false;
                next_mds_kill += 1;
            } else if now >= at {
                mds_killed[victim.index()] = true;
            }
        }

        // 3. Leadership bookkeeping: adopt the committed membership on
        // a fresh leader; enforce the re-election bound.
        let leader = cluster.leader();
        if let Some(l) = leader {
            if known_leader != Some(l) {
                known_leader = Some(l);
                let alive: Vec<bool> = (0..config.mds as u16)
                    .map(|k| cluster.observer().alive.get(&k).copied().unwrap_or(false))
                    .collect();
                monitors[l as usize].adopt_membership(&alive, now);
                pending_failover.clear();
            }
            reelect_deadline = None;
            if let Some(f) = cluster.last_failover_ms() {
                max_failover_ms = max_failover_ms.max(f);
            }
        } else if let Some(deadline) = reelect_deadline {
            let quorum = cluster.up_count() * 2 > config.replicas;
            if now > deadline && quorum && !in_partition && !in_quorum_loss {
                violations.push(format!(
                    "t={now}: no leader within the re-election bound ({}ms past loss)",
                    timing.reelect_bound_ms()
                ));
                reelect_deadline = None;
            }
        }

        // 4. MDS heartbeats flow to the leader's Monitor through the
        // injected network; membership decisions become log entries.
        if let Some(l) = leader {
            if !registered {
                for k in 0..config.mds as u16 {
                    let _ = cluster.submit(l, Command::MdsAlive { mds: k }, now);
                }
                registered = true;
            }
            let mon = &mut monitors[l as usize];
            for (k, &dead) in mds_killed.iter().enumerate() {
                if dead {
                    continue;
                }
                let edge = NetEdge::MdsToMonitor(k as u16);
                if injector.decide(edge, now) == FaultDecision::Drop {
                    continue;
                }
                let hb = Heartbeat {
                    mds: MdsId(k as u16),
                    load: owned.values().filter(|&&o| o.index() == k).count() as f64,
                };
                if let Some(ClusterEvent::MdsRecovered(back)) = mon.on_heartbeat(hb, now) {
                    let _ = cluster.submit(l, Command::MdsAlive { mds: back.0 }, now);
                }
            }
            for event in monitors[l as usize].detect_failures(now) {
                if let ClusterEvent::MdsFailed(dead) = event {
                    let _ = cluster.submit(l, Command::MdsDead { mds: dead.0 }, now);
                }
            }
        }

        // 5. Failover resume: any subtree still owned by a
        // committed-dead MDS gets a re-homing proposed by the current
        // leader — including orphans inherited from a leader that died
        // mid-rebalance.
        if let Some(l) = leader {
            let dead_owners: BTreeSet<MdsId> = owned
                .values()
                .filter(|o| {
                    cluster
                        .observer()
                        .alive
                        .get(&o.0)
                        .is_some_and(|alive| !alive)
                })
                .copied()
                .collect();
            for dead in dead_owners {
                let owned_vec = subtree_table(tree, &owned);
                let migrations =
                    monitors[l as usize].plan_failover(dead, &owned_vec, &cluster_spec, now);
                for mg in migrations {
                    let subtree = mg.node.index() as u64;
                    if pending_failover.insert(subtree) {
                        let _ = cluster.submit(
                            l,
                            Command::Migrate {
                                subtree,
                                from: mg.from.0,
                                to: mg.to.0,
                            },
                            now,
                        );
                    }
                }
            }
        }

        // 6. The GL writer drives its lease lifecycle through the
        // replicated lock state machine, via leader discovery + the
        // shared retry policy.
        match gl_phase {
            GlPhase::Idle => {
                if leader.is_some() || cluster.up_count() * 2 > config.replicas {
                    if client
                        .try_submit(
                            &mut cluster,
                            Command::LeaseAcquire {
                                node: gl_node,
                                holder: GL_WRITER,
                                now_ms: now,
                            },
                            now,
                        )
                        .is_some()
                    {
                        gl_phase = GlPhase::Acquiring;
                        phase_since = now;
                    } else if leader.is_none() {
                        blocked_writes += 1;
                    }
                } else {
                    // Quorum lost: reads still answer from the observer
                    // (and any surviving replica), writes are blocked.
                    let _ = cluster.observer().gl_version(gl_node);
                    blocked_writes += 1;
                }
            }
            GlPhase::Holding { fence } => {
                if !stale_probe_done && now >= stale_probe_after_ms {
                    // Hold the lease past expiry instead of writing.
                    stale_probe_done = true;
                    gl_phase = GlPhase::StaleWait {
                        fence,
                        expires_at_ms: now + lease_ms,
                    };
                } else if client
                    .try_submit(
                        &mut cluster,
                        Command::GlWrite {
                            node: gl_node,
                            fence,
                            now_ms: now,
                        },
                        now,
                    )
                    .is_some()
                {
                    gl_phase = GlPhase::Writing { fence };
                    phase_since = now;
                }
            }
            GlPhase::StaleWait {
                fence,
                expires_at_ms,
            } => {
                if now > expires_at_ms
                    && client
                        .try_submit(
                            &mut cluster,
                            Command::GlWrite {
                                node: gl_node,
                                fence,
                                now_ms: now,
                            },
                            now,
                        )
                        .is_some()
                {
                    gl_phase = GlPhase::StaleProbe { fence };
                    phase_since = now;
                }
            }
            GlPhase::Acquiring | GlPhase::Writing { .. } | GlPhase::StaleProbe { .. } => {
                // Waiting on a commit; resolved in step 7. A proposal
                // accepted by a leader that died before replicating it
                // is simply lost — after a failover-sized wait assume
                // the worst and re-issue, like a real client timing out.
                if now.saturating_sub(phase_since) > give_up_ms {
                    gl_phase = match gl_phase {
                        GlPhase::StaleProbe { fence } => {
                            // Re-arm the probe: the expired fence must
                            // still be submitted and rejected, not
                            // forgotten with the lost message.
                            GlPhase::StaleWait {
                                fence,
                                expires_at_ms: now,
                            }
                        }
                        _ => GlPhase::Idle,
                    };
                    phase_since = now;
                }
            }
        }

        // 7. Advance the consensus cluster one step and fold the newly
        // committed entries back into the chaos world.
        for (_entry, outcome) in cluster.tick(now, Some(&injector)) {
            match outcome {
                Applied::Granted {
                    node,
                    fence,
                    holder,
                } if node == gl_node && holder == GL_WRITER => {
                    if fence <= last_fence {
                        violations.push(format!(
                            "t={now}: fence regression {fence} after {last_fence}"
                        ));
                    }
                    last_fence = fence;
                    if gl_phase == GlPhase::Acquiring {
                        gl_phase = GlPhase::Holding { fence };
                    }
                }
                Applied::GlWritten { node, .. } if node == gl_node => {
                    gl_writes += 1;
                    if let GlPhase::Writing { fence } = gl_phase {
                        let _ = client.try_submit(
                            &mut cluster,
                            Command::LeaseRelease {
                                node: gl_node,
                                fence,
                            },
                            now,
                        );
                        gl_phase = GlPhase::Idle;
                    }
                }
                Applied::Rejected { node, .. } if node == gl_node => {
                    match gl_phase {
                        GlPhase::StaleProbe { .. } => {
                            stale_probes_confirmed += 1;
                            gl_phase = GlPhase::Idle;
                        }
                        GlPhase::Writing { .. } => {
                            // An honest write raced lease expiry (e.g.
                            // blocked behind a long failover): the fence
                            // did its job. Start over.
                            gl_phase = GlPhase::Idle;
                        }
                        _ => {}
                    }
                }
                Applied::Migrated { subtree, to, .. } => {
                    migrations_committed += 1;
                    pending_failover.remove(&subtree);
                    let root = NodeId::from_index(subtree as usize);
                    if let Some(owner) = owned.get_mut(&root) {
                        let from = *owner;
                        *owner = MdsId(to);
                        let size = tree.subtree_size(root) as u64;
                        registry.journal().record(EventKind::SubtreeShed {
                            from: from.0,
                            subtree,
                            size,
                            popularity: size as f64,
                        });
                        registry.journal().record(EventKind::SubtreeClaimed {
                            to,
                            subtree,
                            size,
                            popularity: size as f64,
                        });
                    } else {
                        violations.push(format!("t={now}: migrate of unknown subtree {subtree}"));
                    }
                }
                _ => {}
            }
        }

        // During quorum loss, reads must still answer (the acceptance
        // bar: degraded, not dead).
        if in_quorum_loss {
            let _ = cluster.observer().gl_version(gl_node);
            let _ = cluster.observer().lease(gl_node);
        }
    }

    // Final sweep.
    violations.extend(cluster.check_invariants());
    let roots: BTreeSet<NodeId> = owned.keys().copied().collect();
    if roots != initial_roots {
        violations.push("ownership table lost or invented subtrees".to_string());
    }
    for (&root, &owner) in &owned {
        let alive = cluster
            .observer()
            .alive
            .get(&owner.0)
            .copied()
            .unwrap_or(false);
        if !alive {
            violations.push(format!(
                "subtree {} still owned by dead mds{} at quiesce",
                root.index(),
                owner.0
            ));
        }
    }
    // Fencing tokens in the shared journal must be strictly monotonic —
    // across failovers, restarts and partitions.
    let mut prev = 0u64;
    for e in registry.journal().snapshot() {
        if let EventKind::LeaseGranted { fence, .. } = e.kind {
            if fence <= prev {
                violations.push(format!("journal fence regression: {fence} after {prev}"));
            }
            prev = fence;
        }
    }

    let snap = registry.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(k, _)| k.name == name)
            .map_or(0, |&(_, v)| v)
    };
    let report = MonitorChaosReport {
        seed,
        ticks: config.ticks,
        monitor_kills,
        monitor_restarts,
        elections: counter(names::ELECTIONS_TOTAL),
        leader_changes: counter(names::LEADER_CHANGES_TOTAL),
        commits: counter(names::LOG_COMMITS_TOTAL),
        grants: cluster.observer().grants,
        gl_writes,
        fence_rejections: cluster.observer().fence_rejections,
        stale_probes_confirmed,
        monitor_retries: counter(names::MONITOR_RETRIES_TOTAL),
        blocked_writes,
        max_failover_ms,
        migrations_committed,
        violations,
        journal: snap
            .events
            .iter()
            .map(|e| e.kind)
            .filter(|k| !matches!(k, EventKind::Heartbeat { .. }))
            .collect(),
    };
    fs::remove_dir_all(&wal_root).ok();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_journal_and_report() {
        let config = ChaosConfig::default();
        let a = run_chaos(42, &config);
        let b = run_chaos(42, &config);
        assert_eq!(a, b, "chaos runs must be fully reproducible");
        assert!(!a.journal.is_empty(), "schedule must leave a trace");
    }

    #[test]
    fn default_schedule_recovers_without_violations() {
        let report = run_chaos(42, &ChaosConfig::default());
        assert_eq!(report.kills, 2);
        assert_eq!(report.restarts, report.kills, "every victim restarts");
        assert!(report.rejoins >= report.restarts);
        assert!(
            report.rejoins_with_claims >= 1,
            "a rejoined server must claim at least one subtree"
        );
        assert!(
            report.violations.is_empty(),
            "invariants violated: {:?}",
            report.violations
        );
    }

    #[test]
    fn different_seeds_produce_different_schedules() {
        let config = ChaosConfig::default();
        let a = run_chaos(1, &config);
        let b = run_chaos(2, &config);
        assert_ne!(a.journal, b.journal, "seed must steer the schedule");
    }

    #[test]
    fn crashed_lock_holder_blocks_updates_until_lease_expiry() {
        // With kills scheduled, some victim dies holding the GL lock and
        // the per-tick updates stall until the lease runs out.
        let report = run_chaos(7, &ChaosConfig::default());
        assert!(
            report.blocked_updates > 0,
            "adversarial crash must wedge at least one update"
        );
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn partitions_cause_false_declarations_that_heal() {
        let config = ChaosConfig {
            kills: 0,
            partitions: 2,
            ..ChaosConfig::default()
        };
        let report = run_chaos(11, &config);
        assert_eq!(report.kills, 0);
        assert!(
            report.rejoins >= 1,
            "a long monitor partition must cause a false declaration + rejoin"
        );
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn seeds_sweep_clean_across_the_ci_matrix() {
        for seed in [1u64, 7, 42] {
            let report = run_chaos(seed, &ChaosConfig::default());
            assert!(
                report.violations.is_empty(),
                "seed {seed}: {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn monitor_chaos_same_seed_same_report() {
        let config = MonitorChaosConfig::default();
        let a = run_monitor_chaos(42, &config);
        let b = run_monitor_chaos(42, &config);
        assert_eq!(a, b, "monitor-chaos runs must be fully reproducible");
        assert!(!a.journal.is_empty(), "schedule must leave a trace");
    }

    #[test]
    fn monitor_chaos_default_schedule_survives() {
        let report = run_monitor_chaos(42, &MonitorChaosConfig::default());
        assert!(
            report.violations.is_empty(),
            "control plane violated safety: {:?}",
            report.violations
        );
        assert!(report.monitor_kills >= 1, "leaders must actually die");
        assert_eq!(report.monitor_restarts, report.monitor_kills);
        assert!(report.leader_changes >= 2, "kills must force failovers");
        assert!(report.commits > 0 && report.grants > 0 && report.gl_writes > 0);
        assert_eq!(
            report.stale_probes_confirmed, 1,
            "the expired-fence probe must be rejected, not applied"
        );
        assert!(
            report.fence_rejections >= 1,
            "the stale write must show up as a rejection"
        );
        assert!(
            report.max_failover_ms > 0,
            "a completed failover must be measured"
        );
    }

    #[test]
    fn monitor_chaos_seeds_sweep_clean_and_differ() {
        let config = MonitorChaosConfig::default();
        let mut journals = Vec::new();
        for seed in [1u64, 7, 42] {
            let report = run_monitor_chaos(seed, &config);
            assert!(
                report.violations.is_empty(),
                "seed {seed}: {:?}",
                report.violations
            );
            journals.push(report.journal);
        }
        assert_ne!(journals[0], journals[1], "seed must steer the schedule");
    }

    #[test]
    fn monitor_chaos_mds_kill_rebalances_through_the_log() {
        let report = run_monitor_chaos(7, &MonitorChaosConfig::default());
        assert!(
            report.migrations_committed >= 1,
            "an MDS crash must re-home its subtrees via committed entries"
        );
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn monitor_chaos_quorum_loss_degrades_read_only_then_recovers() {
        let config = MonitorChaosConfig {
            quorum_loss: true,
            ticks: 1200,
            ..MonitorChaosConfig::default()
        };
        let report = run_monitor_chaos(42, &config);
        assert!(
            report.blocked_writes > 0,
            "quorum loss must block writes (while reads keep serving)"
        );
        assert!(
            report.violations.is_empty(),
            "degradation must be graceful: {:?}",
            report.violations
        );
    }

    #[test]
    fn store_chaos_same_seed_same_report() {
        let config = StoreChaosConfig::default();
        let a = run_store_chaos(42, &config);
        let b = run_store_chaos(42, &config);
        assert_eq!(a, b, "store-chaos runs must be fully reproducible");
        assert!(!a.journal.is_empty(), "schedule must leave a trace");
    }

    #[test]
    fn store_chaos_default_schedule_survives() {
        let config = StoreChaosConfig::default();
        let report = run_store_chaos(42, &config);
        assert_eq!(report.crashes, config.crashes);
        assert!(
            report.violations.is_empty(),
            "recovery contract violated: {:?}",
            report.violations
        );
        assert!(report.syncs > 0 && report.snapshots > 0);
        assert!(
            report.torn_crashes + report.partial_fsyncs > 0,
            "the storage rules must actually tear something"
        );
        assert_eq!(
            report.corruptions_detected, report.corrupt_probes,
            "every injected bit-flip must be caught"
        );
        assert!(report.corrupt_probes > 0, "probes must find data to flip");
        assert!(
            report.records_lost < report.records_appended / 2,
            "crashes lose unsynced tails, not the bulk of the log"
        );
    }

    #[test]
    fn store_chaos_seeds_differ_and_sweep_clean() {
        let config = StoreChaosConfig::default();
        let mut journals = Vec::new();
        for seed in [1u64, 7, 42] {
            let report = run_store_chaos(seed, &config);
            assert!(
                report.violations.is_empty(),
                "seed {seed}: {:?}",
                report.violations
            );
            journals.push(report.journal);
        }
        assert_ne!(journals[0], journals[1], "seed must steer the schedule");
    }
}
