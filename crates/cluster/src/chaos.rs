//! Deterministic virtual-time chaos engine for the recovery protocol.
//!
//! [`run_chaos`] replays a seeded schedule of MDS crashes, restarts and
//! Monitor-link partitions against the full recovery stack — the real
//! [`Monitor`] state machine, the real lease-based [`LockService`] and
//! the real mirror-division rejoin path — on a virtual millisecond
//! clock. Unlike the wall-clock live runtime, every run with the same
//! seed and config produces an *identical* event journal, so a failing
//! schedule is a reproducible test case, not an anecdote.
//!
//! The engine machine-checks the cluster's safety invariants at every
//! quiesce point (no partition active, every crash declared and failed
//! over, schedule given time to settle):
//!
//! * no local-layer subtree is lost — the ownership table always covers
//!   exactly the subtrees the initial placement published;
//! * no subtree is owned by a crashed server once fail-over settles;
//! * global-layer versions converge across all live replicas (a crashed
//!   replica freezes, misses commits, and must re-sync on restart).
//!
//! Crashes are adversarial: a victim that can grab the global-layer
//! lock crashes *while holding it*, so the schedule also exercises the
//! lease-expiry path (updates stay blocked until the dead holder's
//! lease runs out, never forever).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use d2tree_core::{D2TreeConfig, D2TreeScheme, Heartbeat, Partitioner, Subtree};
use d2tree_metrics::{ClusterSpec, MdsId, Migration};
use d2tree_namespace::{NamespaceTree, NodeId};
use d2tree_telemetry::{names, EventKind, Registry};
use d2tree_workload::{TraceProfile, WorkloadBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::{FaultDecision, FaultInjector, FaultPlan, FaultRule, FaultScope, NetEdge};
use crate::lock::LockService;
use crate::monitor::{ClusterEvent, Monitor, MonitorConfig};

/// Shape of a chaos run. The schedule itself (who dies when, where the
/// partitions fall) is derived deterministically from the seed passed
/// to [`run_chaos`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Cluster size.
    pub mds: usize,
    /// Namespace-tree size the placement is built over.
    pub nodes: usize,
    /// Virtual ticks to run; disruptions are scheduled in the first 60%,
    /// the tail is settle time.
    pub ticks: u64,
    /// Virtual milliseconds per tick (one heartbeat round).
    pub tick_ms: u64,
    /// Crash-restart cycles to schedule.
    pub kills: usize,
    /// Monitor-link partition windows to schedule (long enough to cause
    /// false failure declarations, so recovery must also cope with
    /// resurrections of servers that never actually died).
    pub partitions: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            mds: 4,
            nodes: 600,
            ticks: 400,
            tick_ms: 20,
            kills: 2,
            partitions: 1,
        }
    }
}

/// What a chaos run did and found.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// The seed the schedule was derived from.
    pub seed: u64,
    /// Ticks executed.
    pub ticks: u64,
    /// Crashes injected.
    pub kills: usize,
    /// Restarts performed.
    pub restarts: usize,
    /// Partition windows injected.
    pub partitions: usize,
    /// Rejoin protocols completed (restarts plus partition resurrections).
    pub rejoins: usize,
    /// Rejoins in which the returning server claimed at least one subtree.
    pub rejoins_with_claims: usize,
    /// Global-layer updates blocked by a crashed lock holder's
    /// still-live lease (they unblock at lease expiry).
    pub blocked_updates: u64,
    /// Invariant violations observed at quiesce points (empty = the
    /// recovery protocol survived the schedule).
    pub violations: Vec<String>,
    /// The run's event journal (heartbeats elided), in order. Two runs
    /// with the same seed and config produce identical journals.
    pub journal: Vec<EventKind>,
    /// Messages the fault plan dropped.
    pub faults_dropped: u64,
    /// Messages the fault plan delayed or reordered.
    pub faults_delayed: u64,
    /// Messages the fault plan duplicated.
    pub faults_duplicated: u64,
}

/// One scheduled disruption, in virtual ms.
#[derive(Debug, Clone, Copy)]
enum Disruption {
    Kill(MdsId),
    Restart(MdsId),
}

/// Runs one seeded chaos schedule to completion.
///
/// # Panics
///
/// Panics if `config` is degenerate (zero MDSs, ticks or tick length,
/// or fewer than two servers to fail over between).
#[must_use]
pub fn run_chaos(seed: u64, config: &ChaosConfig) -> ChaosReport {
    assert!(config.mds >= 2, "chaos needs at least two servers");
    assert!(config.ticks > 0 && config.tick_ms > 0, "empty schedule");
    let failure_timeout_ms = 5 * config.tick_ms;
    let lease_ms = 4 * config.tick_ms;
    let horizon_ms = config.ticks * config.tick_ms;
    let disrupt_until_ms = horizon_ms * 3 / 5;

    // Deterministic topology: placement and local index from the real
    // scheme over a seeded workload tree.
    let w = WorkloadBuilder::new(
        TraceProfile::dtr()
            .with_nodes(config.nodes)
            .with_operations(config.nodes),
    )
    .seed(seed)
    .build();
    let pop = w.popularity();
    let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
    scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(config.mds, 1.0));
    let tree = &w.tree;
    // BTreeMap: deterministic iteration order is what makes the journal
    // reproducible.
    let mut owned: BTreeMap<NodeId, MdsId> = scheme.local_index().iter().collect();
    let initial_roots: BTreeSet<NodeId> = owned.keys().copied().collect();
    let gl_node = tree.root(); // always replicated

    // Seeded schedule: kills with a restart after the failure timeout,
    // partition windows long enough to trigger false declarations.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut schedule: Vec<(u64, Disruption)> = Vec::new();
    let mut plan = FaultPlan::new(seed);
    // Crash-restart cycles are laid out back-to-back (never overlapping),
    // so every scheduled kill actually fires and gets its restart.
    let mut cursor = failure_timeout_ms;
    for _ in 0..config.kills {
        let at = cursor + rng.gen_range(1..=5) * config.tick_ms;
        let victim = MdsId(rng.gen_range(0..config.mds) as u16);
        let back_at = at + failure_timeout_ms + rng.gen_range(1..=5) * config.tick_ms;
        schedule.push((at, Disruption::Kill(victim)));
        schedule.push((back_at, Disruption::Restart(victim)));
        cursor = back_at + config.tick_ms;
    }
    assert!(
        cursor <= disrupt_until_ms,
        "schedule does not fit: raise ticks or lower kills"
    );
    let mut partition_windows: Vec<(u64, u64)> = Vec::new();
    for _ in 0..config.partitions {
        let from = rng.gen_range(config.tick_ms..disrupt_until_ms.max(config.tick_ms + 1));
        let until = from + failure_timeout_ms + rng.gen_range(1..=4) * config.tick_ms;
        let victim = rng.gen_range(0..config.mds) as u16;
        plan = plan.with_rule(FaultRule::partition(
            FaultScope::MonitorLink(victim),
            from,
            until,
        ));
        partition_windows.push((from, until));
    }
    schedule.sort_by_key(|&(at, _)| at);

    let registry = Arc::new(Registry::with_journal_capacity(64 * 1024));
    let injector = FaultInjector::new(&plan).with_registry(Arc::clone(&registry));
    let mut mon = Monitor::with_journal(
        MonitorConfig {
            heartbeat_interval_ms: config.tick_ms,
            failure_timeout_ms,
            ..MonitorConfig::default()
        },
        config.mds,
        Arc::clone(registry.journal()),
    );
    let locks = LockService::new(lease_ms);
    let cluster_spec = ClusterSpec::homogeneous(config.mds, 1.0);

    let mut killed = vec![false; config.mds];
    let mut declared: BTreeSet<usize> = BTreeSet::new();
    let mut gl_versions = vec![0u64; config.mds];
    let mut last_disruption_ms = 0u64;
    let mut next_sched = 0usize;
    let mut kills = 0usize;
    let mut restarts = 0usize;
    let mut rejoins = 0usize;
    let mut rejoins_with_claims = 0usize;
    let mut blocked_updates = 0u64;
    let mut violations: Vec<String> = Vec::new();

    for tick in 0..config.ticks {
        let now = tick * config.tick_ms;

        // 1. Scheduled disruptions due at this tick.
        while next_sched < schedule.len() && schedule[next_sched].0 <= now {
            let (_, d) = schedule[next_sched];
            next_sched += 1;
            last_disruption_ms = now;
            match d {
                Disruption::Kill(v) => {
                    if !killed[v.index()] {
                        // Adversarial crash: die holding the GL lock if
                        // it is free, wedging updates until lease expiry.
                        let _leaked = locks.try_acquire(gl_node, now);
                        killed[v.index()] = true;
                        kills += 1;
                    }
                }
                Disruption::Restart(v) => {
                    if killed[v.index()] {
                        // GL re-sync: a restarted replica copies the
                        // freshest committed state from the live ones
                        // before serving (mirrors LiveCluster::restart).
                        let freshest = gl_versions
                            .iter()
                            .enumerate()
                            .filter(|&(k, _)| !killed[k])
                            .map(|(_, &v)| v)
                            .max()
                            .unwrap_or(gl_versions[v.index()]);
                        gl_versions[v.index()] = freshest.max(gl_versions[v.index()]);
                        killed[v.index()] = false;
                        restarts += 1;
                    }
                }
            }
        }

        // 2. Heartbeats through the (possibly partitioned) monitor links.
        for (k, &dead) in killed.iter().enumerate() {
            if dead {
                continue;
            }
            let edge = NetEdge::MdsToMonitor(k as u16);
            if injector.decide(edge, now) == FaultDecision::Drop {
                continue; // partitioned away from the Monitor
            }
            let hb = Heartbeat {
                mds: MdsId(k as u16),
                load: owned.values().filter(|&&o| o.index() == k).count() as f64,
            };
            if let Some(ClusterEvent::MdsRecovered(back)) = mon.on_heartbeat(hb, now) {
                declared.remove(&back.index());
                let claimed = rejoin(&registry, &mut mon, tree, &mut owned, back, config.mds, now);
                rejoins += 1;
                if claimed > 0 {
                    rejoins_with_claims += 1;
                }
                registry.journal().record(EventKind::MdsRejoined {
                    mds: back.0,
                    claimed: claimed as u64,
                });
            }
        }

        // 3. Failure detection and fail-over.
        for event in mon.detect_failures(now) {
            let ClusterEvent::MdsFailed(dead) = event else {
                continue;
            };
            declared.insert(dead.index());
            last_disruption_ms = now;
            let owned_vec = subtree_table(tree, &owned);
            let migrations = mon.plan_failover(dead, &owned_vec, &cluster_spec, now);
            apply_migrations(&registry, tree, &mut owned, &migrations);
        }

        // 4. One global-layer update per tick through the lock service
        // (any live server can lead the commit).
        if killed.iter().any(|&dead| !dead) {
            match locks.try_acquire(gl_node, now) {
                Some(token) => {
                    for (k, v) in gl_versions.iter_mut().enumerate() {
                        if !killed[k] {
                            *v += 1; // commit propagates to live replicas only
                        }
                    }
                    let released = locks.release(token);
                    debug_assert!(released, "fresh token releases cleanly");
                }
                None => blocked_updates += 1, // wedged by a crashed holder
            }
        }

        // 5. Invariant check at quiesce points.
        let partitioned = partition_windows
            .iter()
            .any(|&(from, until)| now >= from && now < until);
        let undetected_crash = killed
            .iter()
            .enumerate()
            .any(|(k, &dead)| dead && !declared.contains(&k));
        let settled = now >= last_disruption_ms + failure_timeout_ms + 2 * config.tick_ms;
        if !partitioned && !undetected_crash && settled {
            check_invariants(
                tick,
                &owned,
                &initial_roots,
                &killed,
                &gl_versions,
                &mut violations,
            );
        }
    }

    // Final check: the schedule restarts every victim, so the run must
    // end healthy regardless of where the last quiesce point fell.
    check_invariants(
        config.ticks,
        &owned,
        &initial_roots,
        &killed,
        &gl_versions,
        &mut violations,
    );

    let snap = registry.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(k, _)| k.name == name)
            .map_or(0, |&(_, v)| v)
    };
    ChaosReport {
        seed,
        ticks: config.ticks,
        kills,
        restarts,
        partitions: partition_windows.len(),
        rejoins,
        rejoins_with_claims,
        blocked_updates,
        violations,
        journal: snap
            .events
            .iter()
            .map(|e| e.kind)
            .filter(|k| !matches!(k, EventKind::Heartbeat { .. }))
            .collect(),
        faults_dropped: counter(names::FAULTS_DROPPED),
        faults_delayed: counter(names::FAULTS_DELAYED),
        faults_duplicated: counter(names::FAULTS_DUPLICATED),
    }
}

/// The ownership table as the Monitor's rebalancing APIs want it:
/// subtree descriptors (size-weighted popularity keeps weights positive
/// and deterministic) paired with their current owner.
fn subtree_table(tree: &NamespaceTree, owned: &BTreeMap<NodeId, MdsId>) -> Vec<(Subtree, MdsId)> {
    owned
        .iter()
        .map(|(&root, &owner)| {
            let parent = tree.node(root).and_then(|n| n.parent()).unwrap_or(root);
            (
                Subtree {
                    root,
                    parent,
                    popularity: tree.subtree_size(root) as f64,
                    size: tree.subtree_size(root),
                },
                owner,
            )
        })
        .collect()
}

/// Rewrites the ownership table for a batch of migrations, journaling
/// each re-homing as a shed/claim pair.
fn apply_migrations(
    registry: &Registry,
    tree: &NamespaceTree,
    owned: &mut BTreeMap<NodeId, MdsId>,
    migrations: &[Migration],
) {
    for mg in migrations {
        owned.insert(mg.node, mg.to);
        let size = tree.subtree_size(mg.node) as u64;
        let subtree = mg.node.index() as u64;
        registry.journal().record(EventKind::SubtreeShed {
            from: mg.from.0,
            subtree,
            size,
            popularity: size as f64,
        });
        registry.journal().record(EventKind::SubtreeClaimed {
            to: mg.to.0,
            subtree,
            size,
            popularity: size as f64,
        });
    }
}

/// The claiming half of the rejoin protocol (mirrors the live runtime's
/// `rejoin_claims`): run a pending-pool rebalancing round over the live
/// capacities; if the load is too even for the adjuster to route
/// anything to the rejoiner, the owner with the most subtrees hands one
/// over so a rejoined server never sits idle. Returns claims by `back`.
fn rejoin(
    registry: &Registry,
    mon: &mut Monitor,
    tree: &NamespaceTree,
    owned: &mut BTreeMap<NodeId, MdsId>,
    back: MdsId,
    m: usize,
    now: u64,
) -> usize {
    let owned_vec = subtree_table(tree, owned);
    if owned_vec.is_empty() {
        return 0;
    }
    // Dead servers get a vanishing capacity (ClusterSpec requires
    // strictly positive) so the adjuster routes essentially nothing at
    // them; migrations onto a still-dead server are filtered anyway.
    let capacities: Vec<f64> = (0..m)
        .map(|k| {
            let id = MdsId(k as u16);
            if id == back || mon.is_alive(id, now) {
                1.0
            } else {
                1e-9
            }
        })
        .collect();
    let mut migrations = mon.rebalance(&owned_vec, &ClusterSpec::new(capacities));
    migrations.retain(|mg| mg.to == back || mon.is_alive(mg.to, now));
    if !migrations.iter().any(|mg| mg.to == back) {
        // Deterministic fallback: the busiest other live owner (most
        // subtrees, ties to the lowest id) hands over its first subtree.
        let mut per_owner: BTreeMap<MdsId, usize> = BTreeMap::new();
        for (_, owner) in &owned_vec {
            if *owner != back && mon.is_alive(*owner, now) {
                *per_owner.entry(*owner).or_insert(0) += 1;
            }
        }
        let busiest = per_owner
            .iter()
            .max_by_key(|(id, n)| (**n, std::cmp::Reverse(id.0)))
            .map(|(&id, _)| id);
        if let Some(busiest) = busiest {
            if let Some((sub, _)) = owned_vec.iter().find(|(_, o)| *o == busiest) {
                migrations.push(Migration {
                    node: sub.root,
                    from: busiest,
                    to: back,
                });
            }
        }
    }
    apply_migrations(registry, tree, owned, &migrations);
    migrations.iter().filter(|mg| mg.to == back).count()
}

/// One invariant sweep; violations are appended with their tick.
fn check_invariants(
    tick: u64,
    owned: &BTreeMap<NodeId, MdsId>,
    initial_roots: &BTreeSet<NodeId>,
    killed: &[bool],
    gl_versions: &[u64],
    violations: &mut Vec<String>,
) {
    let roots: BTreeSet<NodeId> = owned.keys().copied().collect();
    if roots != *initial_roots {
        for lost in initial_roots.difference(&roots) {
            violations.push(format!("tick {tick}: subtree {} lost", lost.index()));
        }
        for extra in roots.difference(initial_roots) {
            violations.push(format!(
                "tick {tick}: phantom subtree {} appeared",
                extra.index()
            ));
        }
    }
    for (&root, &owner) in owned {
        if killed.get(owner.index()).copied().unwrap_or(true) {
            violations.push(format!(
                "tick {tick}: subtree {} owned by crashed mds{}",
                root.index(),
                owner.0
            ));
        }
    }
    let live: Vec<(usize, u64)> = gl_versions
        .iter()
        .enumerate()
        .filter(|&(k, _)| !killed[k])
        .map(|(k, &v)| (k, v))
        .collect();
    if live.windows(2).any(|w| w[0].1 != w[1].1) {
        violations.push(format!("tick {tick}: GL replica divergence {live:?}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_journal_and_report() {
        let config = ChaosConfig::default();
        let a = run_chaos(42, &config);
        let b = run_chaos(42, &config);
        assert_eq!(a, b, "chaos runs must be fully reproducible");
        assert!(!a.journal.is_empty(), "schedule must leave a trace");
    }

    #[test]
    fn default_schedule_recovers_without_violations() {
        let report = run_chaos(42, &ChaosConfig::default());
        assert_eq!(report.kills, 2);
        assert_eq!(report.restarts, report.kills, "every victim restarts");
        assert!(report.rejoins >= report.restarts);
        assert!(
            report.rejoins_with_claims >= 1,
            "a rejoined server must claim at least one subtree"
        );
        assert!(
            report.violations.is_empty(),
            "invariants violated: {:?}",
            report.violations
        );
    }

    #[test]
    fn different_seeds_produce_different_schedules() {
        let config = ChaosConfig::default();
        let a = run_chaos(1, &config);
        let b = run_chaos(2, &config);
        assert_ne!(a.journal, b.journal, "seed must steer the schedule");
    }

    #[test]
    fn crashed_lock_holder_blocks_updates_until_lease_expiry() {
        // With kills scheduled, some victim dies holding the GL lock and
        // the per-tick updates stall until the lease runs out.
        let report = run_chaos(7, &ChaosConfig::default());
        assert!(
            report.blocked_updates > 0,
            "adversarial crash must wedge at least one update"
        );
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn partitions_cause_false_declarations_that_heal() {
        let config = ChaosConfig {
            kills: 0,
            partitions: 2,
            ..ChaosConfig::default()
        };
        let report = run_chaos(11, &config);
        assert_eq!(report.kills, 0);
        assert!(
            report.rejoins >= 1,
            "a long monitor partition must cause a false declaration + rejoin"
        );
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn seeds_sweep_clean_across_the_ci_matrix() {
        for seed in [1u64, 7, 42] {
            let report = run_chaos(seed, &ChaosConfig::default());
            assert!(
                report.violations.is_empty(),
                "seed {seed}: {:?}",
                report.violations
            );
        }
    }
}
