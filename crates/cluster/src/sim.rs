//! Deterministic discrete-event simulation of the MDS cluster.
//!
//! Models exactly the mechanisms cluster throughput depends on in the
//! paper's EC2 evaluation:
//!
//! * each MDS is a FIFO service station with a fixed worker count (the
//!   2-core instances of Sec. VI);
//! * every client→server or server→server message costs a configurable
//!   one-way latency (the 100 Mbps links);
//! * an update whose target is replicated (global layer) serialises
//!   through the Zookeeper-style lock service — one lock per node, as a
//!   real Zookeeper deployment would grant — holding the lock while all
//!   `M` replicas apply the mutation; hold time grows with the cluster
//!   size, the paper's explanation for RA's slower scaling;
//! * clients are closed-loop: each has one outstanding request, mirroring
//!   the fixed 200-client base.
//!
//! Everything is deterministic under a fixed seed, so experiments are
//! exactly reproducible.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

use d2tree_namespace::NodeId;

use d2tree_core::Partitioner;
use d2tree_namespace::NamespaceTree;
use d2tree_telemetry::trace::{span_names, ArgKey, Span, SpanCtx, Tracer};
use d2tree_telemetry::{names, FaultKind, LocalHistogram, MetricKey, Registry};
use d2tree_workload::{OpKind, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::fault::{FaultDecision, FaultInjector, FaultPlan, NetEdge};

/// Simulation parameters, defaulted to the EC2-like setup of Sec. VI.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Closed-loop client count (the paper fixes 200).
    pub clients: usize,
    /// Concurrent workers per MDS (DualCore instances → 2).
    pub workers_per_mds: usize,
    /// One-way client↔server latency in nanoseconds.
    pub client_latency_ns: u64,
    /// One-way server→server forwarding latency in nanoseconds.
    pub hop_latency_ns: u64,
    /// Service time of a query (read/write) in nanoseconds.
    pub read_service_ns: u64,
    /// Service time of an update in nanoseconds.
    pub update_service_ns: u64,
    /// Fixed lock-service overhead per global-layer update.
    pub lock_base_ns: u64,
    /// Per-replica apply cost while the lock is held; total hold time grows
    /// linearly with the cluster size.
    pub replica_apply_ns: u64,
    /// Client resend timeout after a fault-injected message drop.
    pub retry_timeout_ns: u64,
    /// Seed for routing randomness (which MDS serves a global-layer hit).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            clients: 200,
            workers_per_mds: 2,
            client_latency_ns: 250_000,
            hop_latency_ns: 250_000,
            read_service_ns: 100_000,
            update_service_ns: 150_000,
            lock_base_ns: 100_000,
            replica_apply_ns: 30_000,
            retry_timeout_ns: 2_000_000,
            seed: 0,
        }
    }
}

/// Results of one trace replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayOutcome {
    /// Operations completed (always the full trace).
    pub completed: usize,
    /// Virtual wall-clock the replay took, in seconds.
    pub sim_seconds: f64,
    /// Operations per virtual second.
    pub throughput: f64,
    /// Mean end-to-end latency in microseconds.
    pub mean_latency_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_latency_us: f64,
    /// Per-server busy time in nanoseconds (utilisation numerator).
    pub server_busy_ns: Vec<u64>,
    /// Operations whose request each server ultimately served (empirical
    /// load, the quantity the paper's balance experiments measure).
    pub served_ops: Vec<u64>,
    /// Lock-service busy time in nanoseconds.
    pub lock_busy_ns: u64,
    /// Total inter-server forwarding hops.
    pub total_hops: u64,
}

impl ReplayOutcome {
    /// Per-server utilisation: busy time over (virtual wall-clock ×
    /// workers).
    #[must_use]
    pub fn utilization(&self, workers_per_mds: usize) -> Vec<f64> {
        let wall_ns = (self.sim_seconds * 1e9).max(1.0);
        self.server_busy_ns
            .iter()
            .map(|&b| b as f64 / (wall_ns * workers_per_mds as f64))
            .collect()
    }
}

/// Result of a [`Simulator::replay_with_rebalance`] run: the overall
/// outcome plus the per-round balance trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RebalancedReplay {
    /// Merged outcome over every chunk (throughput is ops over the summed
    /// virtual time).
    pub overall: ReplayOutcome,
    /// Def. 5 balance over each chunk's measured served-op counts, in
    /// chunk order.
    pub balance_per_round: Vec<f64>,
    /// Migrations the scheme performed after each chunk.
    pub migrations_per_round: Vec<usize>,
}

#[derive(Debug, Clone)]
struct ReqState {
    visits: Vec<d2tree_metrics::MdsId>,
    next_visit: usize,
    kind: OpKind,
    target: NodeId,
    issued_at: u64,
    /// Whether this request takes the lock-service path on arrival.
    locked: bool,
    /// Root span context when this operation was sampled for tracing.
    ctx: Option<SpanCtx>,
    /// Virtual time the in-flight hop arrived (queue start), for span
    /// durations covering queue + service.
    hop_arrived_at: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A client pulls its next trace operation.
    Issue { client: u32 },
    /// A request lands in a server's queue.
    Arrive { client: u32 },
    /// A server finishes one service slot for the request.
    ServeDone { client: u32 },
    /// A global-layer update reaches the lock service.
    LockArrive { client: u32 },
    /// The lock holder commits; replicas start applying.
    LockDone { client: u32 },
    /// One server finishes applying a replicated update.
    ApplyDone { server: u32 },
    /// A client re-sends a request whose first copy an injected fault
    /// dropped (fires after `retry_timeout_ns`).
    Resend { client: u32 },
    /// A fault-duplicated request copy arrives: the server does the full
    /// service work, then discards the result.
    Waste { server: u32 },
}

/// A unit of work in a server's FIFO queue: a client request stage, the
/// local apply of a committed global-layer update, or wasted service of
/// a fault-duplicated request copy. Apply/waste jobs carry the trace
/// context of the operation that spawned them (if sampled) so the span
/// lands on the server that actually did the work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Job {
    Request(u32),
    Apply(Option<SpanCtx>),
    Waste(Option<SpanCtx>),
}

/// How the (possibly faulty) network treats one client→server send.
enum SendPlan {
    /// The request arrives at this virtual time.
    Deliver(u64),
    /// It arrives, and a duplicate copy arrives with it (wasted work).
    DeliverDup(u64),
    /// It was dropped; the client resends at this virtual time.
    Resend(u64),
}

/// Resend cap per client per request: past this, deliver unconditionally
/// so a 100%-drop plan cannot hang the closed loop forever.
const MAX_RESENDS: u32 = 64;

fn plan_send(
    injector: Option<&FaultInjector>,
    drops: &mut u32,
    server: u16,
    t: u64,
    cfg: &SimConfig,
) -> SendPlan {
    let base = t + cfg.client_latency_ns;
    let Some(inj) = injector else {
        return SendPlan::Deliver(base);
    };
    match inj.decide(NetEdge::ClientToMds(server), t / 1_000_000) {
        FaultDecision::Deliver => SendPlan::Deliver(base),
        FaultDecision::Drop => {
            if *drops >= MAX_RESENDS {
                SendPlan::Deliver(base)
            } else {
                *drops += 1;
                SendPlan::Resend(t + cfg.retry_timeout_ns)
            }
        }
        FaultDecision::Delay(ms) => SendPlan::Deliver(base + ms * 1_000_000),
        FaultDecision::DeliverTwice => SendPlan::DeliverDup(base),
    }
}

/// Numeric op-kind tag used in root-span args (read 0, write 1, update 2).
pub(crate) fn op_kind_code(kind: OpKind) -> u64 {
    match kind {
        OpKind::Read => 0,
        OpKind::Write => 1,
        OpKind::Update => 2,
    }
}

/// Records the network-leg span for one client→server send, tagging it
/// with the injected fault (if any), and enqueues the trace context for
/// a duplicated copy so the eventual `Waste` event can attribute its
/// wasted service time. Purely observational.
fn trace_send(
    tracer: Option<&Tracer>,
    ctx: Option<SpanCtx>,
    sp: &SendPlan,
    t: u64,
    server: u16,
    cfg: &SimConfig,
    waste_ctx: &mut [VecDeque<Option<SpanCtx>>],
) {
    let Some(tr) = tracer else { return };
    if matches!(sp, SendPlan::DeliverDup(_)) {
        waste_ctx[server as usize].push_back(ctx);
    }
    let Some(ctx) = ctx else { return };
    match *sp {
        SendPlan::Deliver(at) => {
            let mut span = Span::child(
                ctx,
                tr.next_span(ctx.trace),
                span_names::NET,
                t / 1_000,
                (at - t) / 1_000,
            )
            .on_mds(server);
            if at > t + cfg.client_latency_ns {
                span = span.with_fault(FaultKind::Delay);
            }
            tr.record(span);
        }
        SendPlan::DeliverDup(at) => {
            tr.record(
                Span::child(
                    ctx,
                    tr.next_span(ctx.trace),
                    span_names::NET,
                    t / 1_000,
                    (at - t) / 1_000,
                )
                .on_mds(server)
                .with_fault(FaultKind::Duplicate),
            );
        }
        SendPlan::Resend(at) => {
            tr.record(
                Span::child(
                    ctx,
                    tr.next_span(ctx.trace),
                    span_names::RESEND_WAIT,
                    t / 1_000,
                    (at - t) / 1_000,
                )
                .on_mds(server)
                .with_fault(FaultKind::Drop),
            );
        }
    }
}

#[derive(Debug)]
struct Server {
    busy_workers: usize,
    queue: VecDeque<Job>,
    busy_ns: u64,
}

/// Per-replay telemetry accumulator. The event loop is single-threaded,
/// so everything is buffered in plain (non-atomic) locals and flushed to
/// the shared [`Registry`] once at the end of the replay — the per-event
/// cost of enabled telemetry is ordinary integer arithmetic.
struct ReplayTelemetry {
    ops: Vec<u64>,
    queue_depth: Vec<u64>,
    queue_peak: Vec<u64>,
    latency_all: LocalHistogram,
    latency_read: LocalHistogram,
    latency_write: LocalHistogram,
    latency_update: LocalHistogram,
}

impl ReplayTelemetry {
    fn new(m: usize) -> Self {
        ReplayTelemetry {
            ops: vec![0; m],
            queue_depth: vec![0; m],
            queue_peak: vec![0; m],
            latency_all: LocalHistogram::new(),
            latency_read: LocalHistogram::new(),
            latency_write: LocalHistogram::new(),
            latency_update: LocalHistogram::new(),
        }
    }

    fn record_latency(&mut self, kind: OpKind, latency_ns: u64) {
        let us = latency_ns / 1_000;
        self.latency_all.record(us);
        match kind {
            OpKind::Read => self.latency_read.record(us),
            OpKind::Write => self.latency_write.record(us),
            OpKind::Update => self.latency_update.record(us),
        }
    }

    fn queue_pushed(&mut self, server: usize, depth: usize) {
        self.queue_depth[server] = depth as u64;
        self.queue_peak[server] = self.queue_peak[server].max(depth as u64);
    }

    fn queue_popped(&mut self, server: usize, depth: usize) {
        self.queue_depth[server] = depth as u64;
    }

    /// Publishes everything accumulated during the replay.
    fn flush(&self, registry: &Registry) {
        for (k, &n) in self.ops.iter().enumerate() {
            registry
                .counter(MetricKey::mds(names::MDS_OPS_TOTAL, k as u16))
                .add(n);
        }
        for (k, &d) in self.queue_depth.iter().enumerate() {
            registry
                .gauge(MetricKey::mds(names::MDS_QUEUE_DEPTH, k as u16))
                .set(d);
        }
        for (k, &p) in self.queue_peak.iter().enumerate() {
            registry
                .gauge(MetricKey::mds(names::MDS_QUEUE_DEPTH_PEAK, k as u16))
                .max(p);
        }
        self.latency_all
            .flush_into(&registry.histogram(MetricKey::global(names::OP_LATENCY_US)));
        self.latency_read
            .flush_into(&registry.histogram(MetricKey::global(names::OP_LATENCY_US_READ)));
        self.latency_write
            .flush_into(&registry.histogram(MetricKey::global(names::OP_LATENCY_US_WRITE)));
        self.latency_update
            .flush_into(&registry.histogram(MetricKey::global(names::OP_LATENCY_US_UPDATE)));
    }
}

/// The discrete-event simulator.
///
/// # Example
///
/// ```
/// use d2tree_cluster::{SimConfig, Simulator};
/// use d2tree_core::{D2TreeConfig, D2TreeScheme, Partitioner};
/// use d2tree_metrics::ClusterSpec;
/// use d2tree_workload::{TraceProfile, WorkloadBuilder};
///
/// let w = WorkloadBuilder::new(TraceProfile::dtr().with_nodes(1_000).with_operations(5_000))
///     .seed(1)
///     .build();
/// let pop = w.popularity();
/// let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
/// scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(4, 1.0));
///
/// let sim = Simulator::new(SimConfig { clients: 16, ..SimConfig::default() });
/// let out = sim.replay(&w.tree, &w.trace, &scheme);
/// assert_eq!(out.completed, 5_000);
/// assert!(out.throughput > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
    registry: Option<Arc<Registry>>,
    faults: Option<FaultPlan>,
    tracer: Option<Arc<Tracer>>,
}

impl Simulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if `clients` or `workers_per_mds` is zero.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        assert!(config.clients > 0, "need at least one client");
        assert!(
            config.workers_per_mds > 0,
            "need at least one worker per MDS"
        );
        Simulator {
            config,
            registry: None,
            faults: None,
            tracer: None,
        }
    }

    /// Attaches a telemetry registry: subsequent replays record per-MDS
    /// op counts, busy time, queue depths and per-op-type latency
    /// histograms into it.
    #[must_use]
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Attaches a fault plan: every client→MDS send in subsequent replays
    /// consults a fresh seeded [`FaultInjector`], so dropped requests are
    /// resent after [`SimConfig::retry_timeout_ns`], delayed ones arrive
    /// late, and duplicated ones burn wasted service time on the target.
    /// The injector is rebuilt per replay, keeping replays deterministic.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attaches a tracer: subsequent replays record, for every *sampled*
    /// operation, a root `op` span plus child spans for each network
    /// send, server visit (queue + service), lock hold and replica
    /// apply, stamped with virtual time so identically-seeded replays
    /// produce byte-identical span streams. Fault-injected sends tag
    /// their spans with the injected [`FaultKind`]. Tracing is purely
    /// observational: it never changes scheduling or outcomes.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The attached telemetry registry, if any.
    #[must_use]
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.registry.as_ref()
    }

    /// The attached tracer, if any.
    #[must_use]
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    fn service_ns(&self, kind: OpKind, terminal: bool) -> u64 {
        if terminal && kind == OpKind::Update {
            self.update_service()
        } else {
            self.config.read_service_ns
        }
    }

    fn update_service(&self) -> u64 {
        self.config.update_service_ns
    }

    /// Replays `trace` in `rounds` chunks, rebalancing the scheme between
    /// chunks against popularity measured from the replayed prefix (with
    /// the paper's decaying counters) — the experimental loop behind
    /// Fig. 7's "subtraces are replayed to these clusters for 20 times".
    ///
    /// Returns the merged outcome plus per-round balance/migration
    /// trajectories.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0` or the trace has fewer operations than
    /// rounds.
    pub fn replay_with_rebalance(
        &self,
        tree: &NamespaceTree,
        trace: &Trace,
        scheme: &mut dyn Partitioner,
        cluster: &d2tree_metrics::ClusterSpec,
        rounds: usize,
        decay: f64,
    ) -> RebalancedReplay {
        self.replay_with_rebalance_recorded(tree, trace, scheme, cluster, rounds, decay, None)
    }

    /// [`replay_with_rebalance`](Self::replay_with_rebalance), but with
    /// an optional flight recorder sampled once per round: each tick
    /// carries that round's Def. 5 balance (from served ops), the Def. 3
    /// locality of the placement *after* the round's adjustment (the
    /// trajectory shows the rebalancer catching up to drift), cumulative
    /// op/hop/migration counts, and — when a registry is attached —
    /// fault and WAL signals.
    ///
    /// # Panics
    ///
    /// As for [`replay_with_rebalance`](Self::replay_with_rebalance).
    #[allow(
        clippy::too_many_arguments,
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    pub fn replay_with_rebalance_recorded(
        &self,
        tree: &NamespaceTree,
        trace: &Trace,
        scheme: &mut dyn Partitioner,
        cluster: &d2tree_metrics::ClusterSpec,
        rounds: usize,
        decay: f64,
        mut recorder: Option<&mut d2tree_telemetry::FlightRecorder>,
    ) -> RebalancedReplay {
        assert!(rounds > 0, "need at least one round");
        assert!(trace.len() >= rounds, "need at least one op per round");
        let chunk = trace.len() / rounds;
        let mut pop = d2tree_namespace::Popularity::new(tree);
        let mut balance_per_round = Vec::with_capacity(rounds);
        let mut migrations_per_round = Vec::with_capacity(rounds);
        let mut merged: Option<ReplayOutcome> = None;
        // Cumulative inputs for the flight recorder; it differences them
        // into per-tick deltas itself.
        let (mut cum_ops, mut cum_hops, mut cum_migs, mut cum_secs) = (0u64, 0u64, 0u64, 0f64);

        for r in 0..rounds {
            let start = r * chunk;
            let end = if r + 1 == rounds {
                trace.len()
            } else {
                start + chunk
            };
            let sub = Trace::from_ops(trace.ops()[start..end].to_vec());

            let out = self.replay(tree, &sub, scheme);
            let loads: Vec<f64> = out.served_ops.iter().map(|&s| s as f64).collect();
            let total: f64 = loads.iter().sum();
            let measured = d2tree_metrics::ClusterSpec::homogeneous(
                cluster.len(),
                (total / cluster.len() as f64).max(f64::MIN_POSITIVE),
            );
            balance_per_round.push(d2tree_metrics::balance(&loads, &measured));

            // Decayed counters, then one adjustment round.
            pop.decay(decay);
            for op in &sub {
                pop.record(op.target, 1.0);
            }
            pop.rollup(tree);
            migrations_per_round.push(scheme.rebalance(tree, &pop, cluster).len());

            if let Some(rec) = recorder.as_deref_mut() {
                cum_ops += out.completed as u64;
                cum_hops += out.total_hops;
                cum_migs += *migrations_per_round.last().expect("just pushed") as u64;
                cum_secs += out.sim_seconds;
                rec.sample(
                    d2tree_telemetry::TickSample {
                        t_us: (cum_secs * 1e6) as u64,
                        locality: scheme.locality(tree, &pop).locality,
                        balance: *balance_per_round.last().expect("just pushed"),
                        ops_total: cum_ops,
                        retries_total: cum_hops,
                        migrations_total: cum_migs,
                        loads: out.served_ops.iter().map(|&s| s as f64).collect(),
                    },
                    self.registry.as_deref(),
                );
                if let Some(r) = &self.registry {
                    r.counter(MetricKey::global(names::HEALTH_TICKS_TOTAL))
                        .inc();
                }
            }

            merged = Some(match merged.take() {
                None => out,
                Some(mut acc) => {
                    acc.completed += out.completed;
                    acc.sim_seconds += out.sim_seconds;
                    acc.total_hops += out.total_hops;
                    acc.lock_busy_ns += out.lock_busy_ns;
                    for (a, b) in acc.server_busy_ns.iter_mut().zip(&out.server_busy_ns) {
                        *a += b;
                    }
                    for (a, b) in acc.served_ops.iter_mut().zip(&out.served_ops) {
                        *a += b;
                    }
                    // Latency stats: weighted merge by completed counts.
                    let w_old = (acc.completed - out.completed) as f64;
                    let w_new = out.completed as f64;
                    acc.mean_latency_us = (acc.mean_latency_us * w_old
                        + out.mean_latency_us * w_new)
                        / (w_old + w_new);
                    acc.p99_latency_us = acc.p99_latency_us.max(out.p99_latency_us);
                    acc
                }
            });
        }
        let mut overall = merged.expect("at least one round ran");
        overall.throughput = overall.completed as f64 / overall.sim_seconds;
        RebalancedReplay {
            overall,
            balance_per_round,
            migrations_per_round,
        }
    }

    /// Replays `trace` against `scheme`'s current placement and routing.
    ///
    /// Runs until every operation completes; the virtual elapsed time
    /// yields the throughput.
    ///
    /// # Panics
    ///
    /// Panics if the scheme routes to an empty visit list (never happens
    /// for a built scheme).
    #[must_use]
    pub fn replay(
        &self,
        tree: &NamespaceTree,
        trace: &Trace,
        scheme: &dyn Partitioner,
    ) -> ReplayOutcome {
        let m = scheme.placement().cluster_size();
        let mut tel = self.registry.is_some().then(|| ReplayTelemetry::new(m));
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        // Fresh injector per replay: its RNG restarts from the plan seed,
        // so identical replays see identical fault decisions.
        let injector = self.faults.as_ref().map(|plan| {
            let inj = FaultInjector::new(plan);
            match &self.registry {
                Some(r) => inj.with_registry(Arc::clone(r)),
                None => inj,
            }
        });
        let tracer = self.tracer.as_deref();
        // Trace contexts for in-flight fault-duplicated copies, FIFO per
        // server: pushed when a duplicate is scheduled, popped when its
        // `Waste` event fires. Only populated while a tracer is attached,
        // so push/pop stay aligned within a replay.
        let mut waste_ctx: Vec<VecDeque<Option<SpanCtx>>> = vec![VecDeque::new(); m];
        let mut servers: Vec<Server> = (0..m)
            .map(|_| Server {
                busy_workers: 0,
                queue: VecDeque::new(),
                busy_ns: 0,
            })
            .collect();
        // Per-node lock state: nodes currently held, and FIFO waiters.
        let mut locked: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        let mut lock_waiters: HashMap<NodeId, VecDeque<u32>> = HashMap::new();
        let mut lock_busy_ns = 0u64;

        let clients = self.config.clients.min(trace.len().max(1));
        let mut states: Vec<Option<ReqState>> = vec![None; clients];
        let mut cursor = 0usize; // shared trace cursor
        let ops = trace.ops();

        let mut heap: BinaryHeap<Reverse<(u64, u64, u32, u8)>> = BinaryHeap::new();
        let mut seq = 0u64;
        // Event tags for heap entries (heap stores only copyable keys).
        const TAG_ISSUE: u8 = 0;
        const TAG_ARRIVE: u8 = 1;
        const TAG_SERVE_DONE: u8 = 2;
        const TAG_LOCK_ARRIVE: u8 = 3;
        const TAG_LOCK_DONE: u8 = 4;
        const TAG_APPLY_DONE: u8 = 5;
        const TAG_RESEND: u8 = 6;
        const TAG_WASTE: u8 = 7;

        let push = |heap: &mut BinaryHeap<Reverse<(u64, u64, u32, u8)>>,
                    seq: &mut u64,
                    t: u64,
                    ev: Event| {
            let (client, tag) = match ev {
                Event::Issue { client } => (client, TAG_ISSUE),
                Event::Arrive { client } => (client, TAG_ARRIVE),
                Event::ServeDone { client } => (client, TAG_SERVE_DONE),
                Event::LockArrive { client } => (client, TAG_LOCK_ARRIVE),
                Event::LockDone { client } => (client, TAG_LOCK_DONE),
                Event::ApplyDone { server } => (server, TAG_APPLY_DONE),
                Event::Resend { client } => (client, TAG_RESEND),
                Event::Waste { server } => (server, TAG_WASTE),
            };
            *seq += 1;
            heap.push(Reverse((t, *seq, client, tag)));
        };

        // Per-client resend counter for the current request, reset on issue.
        let mut drop_counts = vec![0u32; clients];

        for c in 0..clients as u32 {
            push(&mut heap, &mut seq, 0, Event::Issue { client: c });
        }

        // Lock hold: fixed coordination cost, the leader's own apply, one
        // replica apply and a parallel broadcast round trip. The per-M
        // scaling cost is the real apply *work* each replica performs
        // (enqueued below on commit), not a serial hold.
        let hold_ns = self.config.lock_base_ns
            + self.update_service()
            + self.config.replica_apply_ns
            + 2 * self.config.hop_latency_ns;

        let mut completed = 0usize;
        let mut served_ops = vec![0u64; m];
        let mut latencies: Vec<u64> = Vec::with_capacity(trace.len());
        let mut total_hops = 0u64;
        let mut end_time = 0u64;

        while let Some(Reverse((t, _, client, tag))) = heap.pop() {
            end_time = end_time.max(t);
            let c = client as usize;
            match tag {
                TAG_ISSUE => {
                    if cursor >= ops.len() {
                        continue; // this client retires
                    }
                    let op = ops[cursor];
                    cursor += 1;
                    let plan = scheme.route(tree, op.target, &mut rng);
                    total_hops += plan.hops() as u64;
                    let locked_update = plan.target_replicated && op.kind == OpKind::Update;
                    let ctx = tracer.and_then(Tracer::begin);
                    states[c] = Some(ReqState {
                        visits: plan.visits,
                        next_visit: 0,
                        kind: op.kind,
                        target: op.target,
                        issued_at: t,
                        locked: locked_update,
                        ctx,
                        hop_arrived_at: t,
                    });
                    drop_counts[c] = 0;
                    let state = states[c].as_ref().expect("just stored");
                    let first = state.visits[0].0;
                    let sp = plan_send(
                        injector.as_ref(),
                        &mut drop_counts[c],
                        first,
                        t,
                        &self.config,
                    );
                    trace_send(tracer, ctx, &sp, t, first, &self.config, &mut waste_ctx);
                    match sp {
                        SendPlan::Deliver(at) => {
                            if locked_update {
                                push(&mut heap, &mut seq, at, Event::LockArrive { client });
                            } else {
                                push(&mut heap, &mut seq, at, Event::Arrive { client });
                            }
                        }
                        SendPlan::DeliverDup(at) => {
                            if locked_update {
                                push(&mut heap, &mut seq, at, Event::LockArrive { client });
                            } else {
                                push(&mut heap, &mut seq, at, Event::Arrive { client });
                            }
                            push(
                                &mut heap,
                                &mut seq,
                                at,
                                Event::Waste {
                                    server: first as u32,
                                },
                            );
                        }
                        SendPlan::Resend(at) => {
                            push(&mut heap, &mut seq, at, Event::Resend { client });
                        }
                    }
                }
                TAG_RESEND => {
                    let (first, locked_update, ctx) = {
                        let state = states[c].as_ref().expect("resend without a request");
                        (state.visits[0].0, state.locked, state.ctx)
                    };
                    let sp = plan_send(
                        injector.as_ref(),
                        &mut drop_counts[c],
                        first,
                        t,
                        &self.config,
                    );
                    trace_send(tracer, ctx, &sp, t, first, &self.config, &mut waste_ctx);
                    match sp {
                        SendPlan::Deliver(at) => {
                            if locked_update {
                                push(&mut heap, &mut seq, at, Event::LockArrive { client });
                            } else {
                                push(&mut heap, &mut seq, at, Event::Arrive { client });
                            }
                        }
                        SendPlan::DeliverDup(at) => {
                            if locked_update {
                                push(&mut heap, &mut seq, at, Event::LockArrive { client });
                            } else {
                                push(&mut heap, &mut seq, at, Event::Arrive { client });
                            }
                            push(
                                &mut heap,
                                &mut seq,
                                at,
                                Event::Waste {
                                    server: first as u32,
                                },
                            );
                        }
                        SendPlan::Resend(at) => {
                            push(&mut heap, &mut seq, at, Event::Resend { client });
                        }
                    }
                }
                TAG_WASTE => {
                    // The "client" slot carries the server index; the server
                    // burns one read-sized service slot on the duplicate.
                    let server = c;
                    let wctx = waste_ctx[server].pop_front().flatten();
                    if servers[server].busy_workers < self.config.workers_per_mds {
                        let svc = self.config.read_service_ns;
                        if let (Some(tr), Some(ctx)) = (tracer, wctx) {
                            tr.record(
                                Span::child(
                                    ctx,
                                    tr.next_span(ctx.trace),
                                    span_names::WASTE,
                                    t / 1_000,
                                    svc / 1_000,
                                )
                                .on_mds(server as u16)
                                .with_fault(FaultKind::Duplicate),
                            );
                        }
                        servers[server].busy_workers += 1;
                        servers[server].busy_ns += svc;
                        push(
                            &mut heap,
                            &mut seq,
                            t + svc,
                            Event::ApplyDone {
                                server: server as u32,
                            },
                        );
                    } else {
                        servers[server].queue.push_back(Job::Waste(wctx));
                        if let Some(tel) = &mut tel {
                            tel.queue_pushed(server, servers[server].queue.len());
                        }
                    }
                }
                TAG_ARRIVE => {
                    let state = states[c].as_mut().expect("arrival without a request");
                    state.hop_arrived_at = t;
                    let server = state.visits[state.next_visit].index();
                    if servers[server].busy_workers < self.config.workers_per_mds {
                        servers[server].busy_workers += 1;
                        let terminal = state.next_visit + 1 == state.visits.len();
                        let svc = self.service_ns(state.kind, terminal);
                        servers[server].busy_ns += svc;
                        push(&mut heap, &mut seq, t + svc, Event::ServeDone { client });
                    } else {
                        servers[server].queue.push_back(Job::Request(client));
                        if let Some(tel) = &mut tel {
                            tel.queue_pushed(server, servers[server].queue.len());
                        }
                    }
                }
                TAG_SERVE_DONE => {
                    let (server, finished, ctx, arrived) = {
                        let state = states[c].as_mut().expect("completion without a request");
                        let server = state.visits[state.next_visit].index();
                        state.next_visit += 1;
                        (
                            server,
                            state.next_visit == state.visits.len(),
                            state.ctx,
                            state.hop_arrived_at,
                        )
                    };
                    if let (Some(tr), Some(ctx)) = (tracer, ctx) {
                        tr.record(
                            Span::child(
                                ctx,
                                tr.next_span(ctx.trace),
                                span_names::SERVE,
                                arrived / 1_000,
                                (t - arrived) / 1_000,
                            )
                            .on_mds(server as u16),
                        );
                    }
                    // Free the worker; admit the next queued job.
                    servers[server].busy_workers -= 1;
                    match servers[server].queue.pop_front() {
                        Some(Job::Request(next_client)) => {
                            let nc = next_client as usize;
                            let nstate = states[nc].as_ref().expect("queued request state");
                            let terminal = nstate.next_visit + 1 == nstate.visits.len();
                            let svc = self.service_ns(nstate.kind, terminal);
                            servers[server].busy_workers += 1;
                            servers[server].busy_ns += svc;
                            push(
                                &mut heap,
                                &mut seq,
                                t + svc,
                                Event::ServeDone {
                                    client: next_client,
                                },
                            );
                        }
                        Some(Job::Apply(jctx)) => {
                            let svc = self.config.replica_apply_ns;
                            if let (Some(tr), Some(jctx)) = (tracer, jctx) {
                                tr.record(
                                    Span::child(
                                        jctx,
                                        tr.next_span(jctx.trace),
                                        span_names::APPLY,
                                        t / 1_000,
                                        svc / 1_000,
                                    )
                                    .on_mds(server as u16),
                                );
                            }
                            servers[server].busy_workers += 1;
                            servers[server].busy_ns += svc;
                            push(
                                &mut heap,
                                &mut seq,
                                t + svc,
                                Event::ApplyDone {
                                    server: server as u32,
                                },
                            );
                        }
                        Some(Job::Waste(jctx)) => {
                            let svc = self.config.read_service_ns;
                            if let (Some(tr), Some(jctx)) = (tracer, jctx) {
                                tr.record(
                                    Span::child(
                                        jctx,
                                        tr.next_span(jctx.trace),
                                        span_names::WASTE,
                                        t / 1_000,
                                        svc / 1_000,
                                    )
                                    .on_mds(server as u16)
                                    .with_fault(FaultKind::Duplicate),
                                );
                            }
                            servers[server].busy_workers += 1;
                            servers[server].busy_ns += svc;
                            push(
                                &mut heap,
                                &mut seq,
                                t + svc,
                                Event::ApplyDone {
                                    server: server as u32,
                                },
                            );
                        }
                        None => {}
                    }
                    if let Some(tel) = &mut tel {
                        tel.queue_popped(server, servers[server].queue.len());
                    }
                    if finished {
                        let state = states[c].take().expect("request state");
                        let served_by = state.visits.last().expect("non-empty").index();
                        served_ops[served_by] += 1;
                        let done_at = t + self.config.client_latency_ns;
                        latencies.push(done_at - state.issued_at);
                        if let (Some(tr), Some(ctx)) = (tracer, state.ctx) {
                            tr.record(
                                Span::root(
                                    ctx,
                                    span_names::OP,
                                    state.issued_at / 1_000,
                                    (done_at - state.issued_at) / 1_000,
                                )
                                .with_arg(ArgKey::Target, state.target.index() as u64)
                                .with_arg(ArgKey::Kind, op_kind_code(state.kind))
                                .with_arg(ArgKey::Hops, state.visits.len() as u64 - 1)
                                .with_arg(ArgKey::Locked, 0),
                            );
                        }
                        if let Some(tel) = &mut tel {
                            tel.ops[served_by] += 1;
                            tel.record_latency(state.kind, done_at - state.issued_at);
                        }
                        completed += 1;
                        push(&mut heap, &mut seq, done_at, Event::Issue { client });
                    } else {
                        push(
                            &mut heap,
                            &mut seq,
                            t + self.config.hop_latency_ns,
                            Event::Arrive { client },
                        );
                    }
                }
                TAG_LOCK_ARRIVE => {
                    let state = states[c].as_mut().expect("lock arrival state");
                    state.hop_arrived_at = t;
                    let node = state.target;
                    if locked.contains(&node) {
                        lock_waiters.entry(node).or_default().push_back(client);
                    } else {
                        locked.insert(node);
                        lock_busy_ns += hold_ns;
                        push(&mut heap, &mut seq, t + hold_ns, Event::LockDone { client });
                    }
                }
                TAG_LOCK_DONE => {
                    let state = states[c].take().expect("lock holder state");
                    let node = state.target;
                    match lock_waiters.get_mut(&node).and_then(VecDeque::pop_front) {
                        Some(next_client) => {
                            lock_busy_ns += hold_ns;
                            push(
                                &mut heap,
                                &mut seq,
                                t + hold_ns,
                                Event::LockDone {
                                    client: next_client,
                                },
                            );
                        }
                        None => {
                            locked.remove(&node);
                            lock_waiters.remove(&node);
                        }
                    }
                    // Lock span: the wait (if any) plus the hold, charged to
                    // the commit leader. Replica applies parent on it so the
                    // viewer shows the causal fan-out of the commit.
                    let lock_ctx = match (tracer, state.ctx) {
                        (Some(tr), Some(ctx)) => {
                            let id = tr.next_span(ctx.trace);
                            tr.record(
                                Span::child(
                                    ctx,
                                    id,
                                    span_names::LOCK,
                                    state.hop_arrived_at / 1_000,
                                    (t - state.hop_arrived_at) / 1_000,
                                )
                                .on_mds(state.visits[0].0)
                                .with_arg(ArgKey::Node, node.index() as u64),
                            );
                            Some(SpanCtx {
                                trace: ctx.trace,
                                span: id,
                            })
                        }
                        _ => None,
                    };
                    // Every replica applies the committed mutation —
                    // real work on every replica's queue, which is what
                    // slows update-heavy traces as the cluster grows.
                    let replicas = scheme.placement().replicas().clone();
                    for (s, server) in servers.iter_mut().enumerate() {
                        if !replicas.contains(d2tree_metrics::MdsId(s as u16)) {
                            continue;
                        }
                        if server.busy_workers < self.config.workers_per_mds {
                            if let (Some(tr), Some(pctx)) = (tracer, lock_ctx) {
                                tr.record(
                                    Span::child(
                                        pctx,
                                        tr.next_span(pctx.trace),
                                        span_names::APPLY,
                                        t / 1_000,
                                        self.config.replica_apply_ns / 1_000,
                                    )
                                    .on_mds(s as u16),
                                );
                            }
                            server.busy_workers += 1;
                            server.busy_ns += self.config.replica_apply_ns;
                            push(
                                &mut heap,
                                &mut seq,
                                t + self.config.replica_apply_ns,
                                Event::ApplyDone { server: s as u32 },
                            );
                        } else {
                            server.queue.push_back(Job::Apply(lock_ctx));
                            if let Some(tel) = &mut tel {
                                tel.queue_pushed(s, server.queue.len());
                            }
                        }
                    }
                    // The op itself is charged to the MDS the client first
                    // contacted (the commit leader).
                    let served_by = state.visits[0].index();
                    served_ops[served_by] += 1;
                    let done_at = t + self.config.client_latency_ns;
                    latencies.push(done_at - state.issued_at);
                    if let (Some(tr), Some(ctx)) = (tracer, state.ctx) {
                        tr.record(
                            Span::root(
                                ctx,
                                span_names::OP,
                                state.issued_at / 1_000,
                                (done_at - state.issued_at) / 1_000,
                            )
                            .with_arg(ArgKey::Target, state.target.index() as u64)
                            .with_arg(ArgKey::Kind, op_kind_code(state.kind))
                            .with_arg(ArgKey::Hops, 0)
                            .with_arg(ArgKey::Locked, 1),
                        );
                    }
                    if let Some(tel) = &mut tel {
                        tel.ops[served_by] += 1;
                        tel.record_latency(state.kind, done_at - state.issued_at);
                    }
                    completed += 1;
                    push(&mut heap, &mut seq, done_at, Event::Issue { client });
                }
                TAG_APPLY_DONE => {
                    let server = c; // the "client" slot carries the server index
                    servers[server].busy_workers -= 1;
                    match servers[server].queue.pop_front() {
                        Some(Job::Request(next_client)) => {
                            let nc = next_client as usize;
                            let nstate = states[nc].as_ref().expect("queued request state");
                            let terminal = nstate.next_visit + 1 == nstate.visits.len();
                            let svc = self.service_ns(nstate.kind, terminal);
                            servers[server].busy_workers += 1;
                            servers[server].busy_ns += svc;
                            push(
                                &mut heap,
                                &mut seq,
                                t + svc,
                                Event::ServeDone {
                                    client: next_client,
                                },
                            );
                        }
                        Some(Job::Apply(jctx)) => {
                            let svc = self.config.replica_apply_ns;
                            if let (Some(tr), Some(jctx)) = (tracer, jctx) {
                                tr.record(
                                    Span::child(
                                        jctx,
                                        tr.next_span(jctx.trace),
                                        span_names::APPLY,
                                        t / 1_000,
                                        svc / 1_000,
                                    )
                                    .on_mds(server as u16),
                                );
                            }
                            servers[server].busy_workers += 1;
                            servers[server].busy_ns += svc;
                            push(
                                &mut heap,
                                &mut seq,
                                t + svc,
                                Event::ApplyDone {
                                    server: server as u32,
                                },
                            );
                        }
                        Some(Job::Waste(jctx)) => {
                            let svc = self.config.read_service_ns;
                            if let (Some(tr), Some(jctx)) = (tracer, jctx) {
                                tr.record(
                                    Span::child(
                                        jctx,
                                        tr.next_span(jctx.trace),
                                        span_names::WASTE,
                                        t / 1_000,
                                        svc / 1_000,
                                    )
                                    .on_mds(server as u16)
                                    .with_fault(FaultKind::Duplicate),
                                );
                            }
                            servers[server].busy_workers += 1;
                            servers[server].busy_ns += svc;
                            push(
                                &mut heap,
                                &mut seq,
                                t + svc,
                                Event::ApplyDone {
                                    server: server as u32,
                                },
                            );
                        }
                        None => {}
                    }
                    if let Some(tel) = &mut tel {
                        tel.queue_popped(server, servers[server].queue.len());
                    }
                }
                _ => unreachable!("unknown event tag"),
            }
        }

        latencies.sort_unstable();
        let sim_seconds = (end_time.max(1)) as f64 / 1e9;
        let mean_latency_us = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1e3
        };
        let p99_latency_us = if latencies.is_empty() {
            0.0
        } else {
            latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)] as f64 / 1e3
        };
        let server_busy_ns: Vec<u64> = servers.into_iter().map(|s| s.busy_ns).collect();
        if let Some(registry) = self.registry.as_deref() {
            if let Some(tel) = &tel {
                tel.flush(registry);
            }
            for (k, &busy) in server_busy_ns.iter().enumerate() {
                registry
                    .counter(MetricKey::mds(names::MDS_BUSY_NS, k as u16))
                    .add(busy);
            }
            registry
                .counter(MetricKey::global(names::LOCK_BUSY_NS))
                .add(lock_busy_ns);
            registry
                .counter(MetricKey::global(names::ROUTE_EXTRA_HOPS))
                .add(total_hops);
        }
        ReplayOutcome {
            completed,
            sim_seconds,
            throughput: completed as f64 / sim_seconds,
            mean_latency_us,
            p99_latency_us,
            server_busy_ns,
            served_ops,
            lock_busy_ns,
            total_hops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_baselines::{HashMapping, StaticSubtree};
    use d2tree_core::{D2TreeConfig, D2TreeScheme};
    use d2tree_metrics::ClusterSpec;
    use d2tree_workload::{TraceProfile, WorkloadBuilder};

    fn workload(ops: usize) -> (d2tree_workload::Workload, d2tree_namespace::Popularity) {
        let w = WorkloadBuilder::new(TraceProfile::dtr().with_nodes(1_500).with_operations(ops))
            .seed(3)
            .build();
        let pop = w.popularity();
        (w, pop)
    }

    fn sim(clients: usize) -> Simulator {
        Simulator::new(SimConfig {
            clients,
            seed: 1,
            ..SimConfig::default()
        })
    }

    #[test]
    fn completes_every_operation() {
        let (w, pop) = workload(4_000);
        let cluster = ClusterSpec::homogeneous(4, 1.0);
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme.build(&w.tree, &pop, &cluster);
        let out = sim(32).replay(&w.tree, &w.trace, &scheme);
        assert_eq!(out.completed, 4_000);
        assert!(out.sim_seconds > 0.0);
        assert!(out.mean_latency_us > 0.0);
        assert!(out.p99_latency_us >= out.mean_latency_us * 0.5);
    }

    #[test]
    fn deterministic_replay() {
        let (w, pop) = workload(2_000);
        let cluster = ClusterSpec::homogeneous(3, 1.0);
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme.build(&w.tree, &pop, &cluster);
        let a = sim(16).replay(&w.tree, &w.trace, &scheme);
        let b = sim(16).replay(&w.tree, &w.trace, &scheme);
        assert_eq!(a, b);
    }

    #[test]
    fn d2tree_scales_with_cluster_size_on_read_heavy_trace() {
        let (w, pop) = workload(8_000);
        let mut results = Vec::new();
        for m in [2, 8] {
            let cluster = ClusterSpec::homogeneous(m, 1.0);
            let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
            scheme.build(&w.tree, &pop, &cluster);
            results.push(sim(64).replay(&w.tree, &w.trace, &scheme).throughput);
        }
        assert!(
            results[1] > results[0] * 1.5,
            "8 MDSs should clearly outrun 2: {results:?}"
        );
    }

    #[test]
    fn hash_mapping_pays_for_hops() {
        let (w, pop) = workload(4_000);
        let cluster = ClusterSpec::homogeneous(8, 1.0);
        let mut d2 = D2TreeScheme::new(D2TreeConfig::paper_default());
        d2.build(&w.tree, &pop, &cluster);
        let mut hash = HashMapping::new(5);
        hash.build(&w.tree, &pop, &cluster);
        let s = sim(64);
        let d2_out = s.replay(&w.tree, &w.trace, &d2);
        let hash_out = s.replay(&w.tree, &w.trace, &hash);
        assert!(hash_out.total_hops > d2_out.total_hops * 2);
        assert!(
            d2_out.throughput > hash_out.throughput,
            "D2-Tree {} vs hash {}",
            d2_out.throughput,
            hash_out.throughput
        );
    }

    #[test]
    fn update_heavy_trace_contends_on_the_lock() {
        let w = WorkloadBuilder::new(TraceProfile::ra().with_nodes(1_500).with_operations(4_000))
            .seed(4)
            .build();
        let pop = w.popularity();
        let cluster = ClusterSpec::homogeneous(8, 1.0);
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme.build(&w.tree, &pop, &cluster);
        let out = sim(64).replay(&w.tree, &w.trace, &scheme);
        assert!(
            out.lock_busy_ns > 0,
            "RA updates must exercise the lock service"
        );
    }

    #[test]
    fn static_subtree_skew_limits_throughput() {
        let (w, pop) = workload(6_000);
        let cluster = ClusterSpec::homogeneous(8, 1.0);
        let mut st = StaticSubtree::new(2);
        st.build(&w.tree, &pop, &cluster);
        let out = sim(64).replay(&w.tree, &w.trace, &st);
        // The busiest server should be far busier than the idlest —
        // static partitioning cannot spread a skewed workload.
        let max = out.server_busy_ns.iter().max().unwrap();
        let min = out.server_busy_ns.iter().min().unwrap();
        assert!(max > &(min * 2), "busy {max} vs idle {min}");
    }

    #[test]
    fn rebalanced_replay_conserves_ops_and_reports_rounds() {
        let (w, pop) = workload(6_000);
        let cluster = ClusterSpec::homogeneous(4, pop.sum_individual() / 4.0);
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme.build(&w.tree, &pop, &cluster);
        let out = sim(32).replay_with_rebalance(&w.tree, &w.trace, &mut scheme, &cluster, 5, 0.5);
        assert_eq!(out.overall.completed, 6_000);
        assert_eq!(out.balance_per_round.len(), 5);
        assert_eq!(out.migrations_per_round.len(), 5);
        assert_eq!(out.overall.served_ops.iter().sum::<u64>(), 6_000);
        assert!(out.overall.throughput > 0.0);
        for b in &out.balance_per_round {
            assert!(*b > 0.0);
        }
    }

    #[test]
    fn recorded_replay_ticks_once_per_round_and_matches_trajectories() {
        let (w, pop) = workload(6_000);
        let cluster = ClusterSpec::homogeneous(4, pop.sum_individual() / 4.0);
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme.build(&w.tree, &pop, &cluster);
        let registry = Arc::new(Registry::new());
        let mut rec = d2tree_telemetry::FlightRecorder::new(16);
        let out = sim(32)
            .with_registry(Arc::clone(&registry))
            .replay_with_rebalance_recorded(
                &w.tree,
                &w.trace,
                &mut scheme,
                &cluster,
                5,
                0.5,
                Some(&mut rec),
            );
        assert_eq!(rec.len(), 5, "one tick per round");
        let ticks: Vec<_> = rec.ticks().cloned().collect();
        // The recorder's balance trajectory is exactly the replay's.
        for (tick, b) in ticks.iter().zip(&out.balance_per_round) {
            assert!((tick.balance - b).abs() < 1e-12);
        }
        for (tick, m) in ticks.iter().zip(&out.migrations_per_round) {
            assert_eq!(tick.migrations, *m as u64);
        }
        assert_eq!(ticks.iter().map(|t| t.ops).sum::<u64>(), 6_000);
        assert!(ticks
            .iter()
            .all(|t| t.locality.is_finite() && t.locality > 0.0));
        assert!(
            ticks.windows(2).all(|w| w[0].t_us < w[1].t_us),
            "virtual time advances"
        );
        assert_eq!(
            registry
                .counter(MetricKey::global(names::HEALTH_TICKS_TOTAL))
                .get(),
            5
        );
        // Same seed, no recorder: outcome identical (recording is passive).
        let mut scheme2 = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme2.build(&w.tree, &pop, &cluster);
        let out2 = sim(32).replay_with_rebalance(&w.tree, &w.trace, &mut scheme2, &cluster, 5, 0.5);
        assert_eq!(out.balance_per_round, out2.balance_per_round);
        assert_eq!(out.overall.completed, out2.overall.completed);
    }

    #[test]
    fn utilization_is_a_fraction() {
        let (w, pop) = workload(2_000);
        let cluster = ClusterSpec::homogeneous(3, 1.0);
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme.build(&w.tree, &pop, &cluster);
        let config = SimConfig {
            clients: 32,
            seed: 1,
            ..SimConfig::default()
        };
        let out = Simulator::new(config).replay(&w.tree, &w.trace, &scheme);
        for u in out.utilization(config.workers_per_mds) {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&u),
                "utilisation {u} out of range"
            );
        }
    }

    #[test]
    fn telemetry_agrees_with_outcome_and_leaves_results_unchanged() {
        let (w, pop) = workload(2_000);
        let cluster = ClusterSpec::homogeneous(3, 1.0);
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme.build(&w.tree, &pop, &cluster);
        let registry = Arc::new(Registry::new());
        let out = sim(16)
            .with_registry(Arc::clone(&registry))
            .replay(&w.tree, &w.trace, &scheme);

        let per_mds_ops: u64 = (0..3)
            .map(|k| {
                registry
                    .counter(MetricKey::mds(names::MDS_OPS_TOTAL, k))
                    .get()
            })
            .sum();
        assert_eq!(per_mds_ops, out.completed as u64);
        for (k, &served) in out.served_ops.iter().enumerate() {
            assert_eq!(
                registry
                    .counter(MetricKey::mds(names::MDS_OPS_TOTAL, k as u16))
                    .get(),
                served
            );
            assert_eq!(
                registry
                    .counter(MetricKey::mds(names::MDS_BUSY_NS, k as u16))
                    .get(),
                out.server_busy_ns[k]
            );
        }
        let h = registry.histogram(MetricKey::global(names::OP_LATENCY_US));
        assert_eq!(h.count(), out.completed as u64);
        let p99 = h.quantile(0.99) as f64;
        assert!(
            (p99 - out.p99_latency_us).abs() <= out.p99_latency_us * 0.08 + 1.0,
            "histogram p99 {p99} vs exact {}",
            out.p99_latency_us
        );
        assert_eq!(
            registry
                .counter(MetricKey::global(names::ROUTE_EXTRA_HOPS))
                .get(),
            out.total_hops
        );

        // Telemetry must be purely observational.
        let plain = sim(16).replay(&w.tree, &w.trace, &scheme);
        assert_eq!(plain, out);
    }

    #[test]
    fn faulty_replay_is_deterministic_lossless_and_slower() {
        use crate::fault::{FaultAction, FaultRule, FaultScope};
        let (w, pop) = workload(2_000);
        let cluster = ClusterSpec::homogeneous(3, 1.0);
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme.build(&w.tree, &pop, &cluster);
        let plan = FaultPlan::new(9)
            .with_rule(
                FaultRule::new(FaultScope::AllLinks, FaultAction::Drop).with_probability(0.05),
            )
            .with_rule(
                FaultRule::new(
                    FaultScope::Mds(0),
                    FaultAction::Delay {
                        fixed_ms: 1,
                        jitter_ms: 1,
                    },
                )
                .with_probability(0.2),
            )
            .with_rule(
                FaultRule::new(FaultScope::Mds(1), FaultAction::Duplicate).with_probability(0.1),
            );
        let a = sim(16)
            .with_faults(plan.clone())
            .replay(&w.tree, &w.trace, &scheme);
        let b = sim(16).with_faults(plan).replay(&w.tree, &w.trace, &scheme);
        assert_eq!(a, b, "same plan must replay identically");
        assert_eq!(a.completed, 2_000, "faults may slow ops, never lose them");
        let clean = sim(16).replay(&w.tree, &w.trace, &scheme);
        assert!(
            a.sim_seconds > clean.sim_seconds,
            "drops/delays must cost virtual time: faulty {} vs clean {}",
            a.sim_seconds,
            clean.sim_seconds
        );
    }

    #[test]
    fn more_clients_do_not_lose_operations() {
        let (w, pop) = workload(1_000);
        let cluster = ClusterSpec::homogeneous(2, 1.0);
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme.build(&w.tree, &pop, &cluster);
        // More clients than operations: the simulator clamps.
        let out = Simulator::new(SimConfig {
            clients: 5_000,
            ..SimConfig::default()
        })
        .replay(&w.tree, &w.trace, &scheme);
        assert_eq!(out.completed, 1_000);
    }
}
