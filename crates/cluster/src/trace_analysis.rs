//! Trace analyzer: reconstructs per-operation hop counts from recorded
//! spans and cross-checks them against the paper's formal metrics —
//! Def. 1 (`path_jumps`) per operation, Def. 3 (`SystemLocality`) in
//! aggregate — treating any disagreement as a hard error.
//!
//! The check only makes sense when the replay routed every access over
//! the *full* root-to-target chain, because Def. 1 counts jumps from
//! the root while production routing skips the client-cached top
//! levels and D2-Tree's own router short-circuits through the local
//! index. [`StrictChainRoute`] wraps any built scheme and swaps its
//! routing for `chain_route_from(…, start_depth = 0)`; under that walk
//! the deduplicated visit sequence jumps exactly where Def. 1 jumps,
//! so the span-derived hop count (serve spans − 1) must equal
//! `path_jumps` for every traced operation. Replicated targets route
//! to a single random replica and never jump, matching Def. 1's rule
//! that replicated chain nodes neither jump nor pin.
//!
//! The analyzer also attributes fault-injected latency: every span the
//! simulator tagged with a [`FaultKind`] is rolled up per kind and per
//! MDS, answering "which hops did the chaos schedule actually hurt,
//! and by how much".

use std::collections::BTreeMap;

use d2tree_core::{chain_route_from, AccessPlan, Partitioner};
use d2tree_metrics::{
    locality_from_jumps, path_jumps, ClusterSpec, LocalityReport, Migration, Placement,
};
use d2tree_namespace::{NamespaceTree, NodeId, Popularity};
use d2tree_telemetry::trace::{span_names, ArgKey, Span};
use d2tree_telemetry::FaultKind;
use rand::RngCore;

/// Verification-mode router: delegates everything to the wrapped
/// (already built) scheme except [`Partitioner::route`], which walks
/// the full root-to-target chain with no client caching, and
/// [`Partitioner::jumps`], which is pinned to Def. 1's `path_jumps`
/// (not a scheme-specific convention like D2-Tree's Eq. 7).
pub struct StrictChainRoute<'a>(pub &'a dyn Partitioner);

impl std::fmt::Debug for StrictChainRoute<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("StrictChainRoute")
            .field(&self.name())
            .finish()
    }
}

impl Partitioner for StrictChainRoute<'_> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    /// Unsupported: the wrapper verifies an existing placement.
    ///
    /// # Panics
    ///
    /// Always panics; build the wrapped scheme first.
    fn build(&mut self, _tree: &NamespaceTree, _pop: &Popularity, _cluster: &ClusterSpec) {
        panic!("StrictChainRoute wraps an already-built scheme");
    }

    fn placement(&self) -> &Placement {
        self.0.placement()
    }

    fn jumps(&self, tree: &NamespaceTree, node: NodeId) -> u32 {
        path_jumps(tree, self.placement(), node)
    }

    fn route(&self, tree: &NamespaceTree, node: NodeId, rng: &mut dyn RngCore) -> AccessPlan {
        chain_route_from(tree, self.placement(), node, rng, 0)
    }

    fn rebalance(
        &mut self,
        _tree: &NamespaceTree,
        _pop: &Popularity,
        _cluster: &ClusterSpec,
    ) -> Vec<Migration> {
        // Verification replays never rebalance mid-run.
        Vec::new()
    }
}

/// One operation reconstructed from its spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracedOp {
    /// Trace id of the operation.
    pub trace: u64,
    /// Target node of the access.
    pub target: NodeId,
    /// Whether the op went through the global-layer lock path.
    pub locked: bool,
    /// Forwarding hops observed from spans: serve spans − 1 (0 for
    /// lock-path ops, which a single leader commits).
    pub observed_hops: u32,
    /// Def. 1 `path_jumps` for the same target.
    pub analytic_jumps: u32,
    /// End-to-end latency of the op's root span, microseconds.
    pub latency_us: u64,
}

/// Latency attributed to one injected fault kind.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultAttribution {
    /// Fault-tagged spans seen.
    pub count: u64,
    /// Summed duration of those spans, microseconds.
    pub total_us: u64,
    /// The same, split by the MDS the faulted hop targeted.
    pub per_mds: BTreeMap<u16, u64>,
}

/// The analyzer's verdict over one traced replay.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// Operations reconstructed (one per root span).
    pub ops: Vec<TracedOp>,
    /// Mean observed hops per operation.
    pub mean_observed_hops: f64,
    /// Def. 3 locality computed from *observed* per-target jumps
    /// (falling back to `path_jumps` for targets the sample missed).
    pub observed_locality: LocalityReport,
    /// Def. 3 locality computed purely analytically.
    pub analytic_locality: LocalityReport,
    /// Injected-fault latency, rolled up per fault kind.
    pub faults: BTreeMap<FaultKind, FaultAttribution>,
}

/// A disagreement between observed spans and the paper's metrics, or a
/// structurally broken trace. Each is a hard error: it means the
/// implementation's routing and the analytic model diverged.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceCheckError {
    /// An operation's span-derived hop count ≠ Def. 1 `path_jumps`.
    HopMismatch {
        /// Trace id of the offending operation.
        trace: u64,
        /// Target node index.
        target: usize,
        /// Hops counted from serve spans.
        observed: u32,
        /// Def. 1 jump count.
        analytic: u32,
    },
    /// Aggregate Def. 3 locality disagreed beyond f64 tolerance.
    LocalityMismatch {
        /// Locality from observed jumps.
        observed: f64,
        /// Locality from `path_jumps`.
        analytic: f64,
    },
    /// A child span referenced a trace with no root `op` span (the
    /// sink overflowed, or the producer is broken).
    OrphanSpans {
        /// Trace id lacking a root.
        trace: u64,
        /// Child spans found for it.
        spans: usize,
    },
    /// A root span was missing a required argument.
    MalformedRoot {
        /// Trace id of the malformed root.
        trace: u64,
        /// The missing argument key.
        missing: &'static str,
    },
}

impl std::fmt::Display for TraceCheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceCheckError::HopMismatch {
                trace,
                target,
                observed,
                analytic,
            } => write!(
                f,
                "trace {trace}: op on node {target} observed {observed} hop(s) \
                 but Def. 1 path_jumps says {analytic}"
            ),
            TraceCheckError::LocalityMismatch { observed, analytic } => write!(
                f,
                "Def. 3 locality mismatch: observed {observed} vs analytic {analytic}"
            ),
            TraceCheckError::OrphanSpans { trace, spans } => write!(
                f,
                "trace {trace} has {spans} span(s) but no root op span \
                 (span sink overflow?)"
            ),
            TraceCheckError::MalformedRoot { trace, missing } => {
                write!(f, "trace {trace}: root span lacks the '{missing}' arg")
            }
        }
    }
}

impl std::error::Error for TraceCheckError {}

fn root_arg(span: &Span, key: ArgKey) -> Result<u64, TraceCheckError> {
    span.args
        .iter()
        .find(|(k, _)| *k == key)
        .map(|&(_, v)| v)
        .ok_or(TraceCheckError::MalformedRoot {
            trace: span.trace.0,
            missing: key.name(),
        })
}

/// Reconstructs per-operation hop counts from `spans` and cross-checks
/// them against Def. 1 and Def. 3.
///
/// `spans` must come from a replay routed through [`StrictChainRoute`]
/// (full-chain walk) at 100% sampling for the per-op equality to be
/// meaningful; `placement` is the placement that replay routed over and
/// `pop` must already be rolled up. Any disagreement — per-op or
/// aggregate — returns an error rather than a warning.
///
/// # Errors
///
/// See [`TraceCheckError`] for every way the cross-check can fail.
///
/// # Panics
///
/// Panics if `pop` was not rolled up (propagated from
/// `Popularity::total`).
pub fn analyze(
    spans: &[Span],
    tree: &NamespaceTree,
    placement: &Placement,
    pop: &Popularity,
) -> Result<TraceAnalysis, TraceCheckError> {
    // Group: roots and serve counts per trace, fault roll-up globally.
    let mut roots: BTreeMap<u64, &Span> = BTreeMap::new();
    let mut serves: BTreeMap<u64, u32> = BTreeMap::new();
    let mut children: BTreeMap<u64, usize> = BTreeMap::new();
    let mut faults: BTreeMap<FaultKind, FaultAttribution> = BTreeMap::new();

    for s in spans {
        if s.name == span_names::OP && s.parent.is_none() {
            roots.insert(s.trace.0, s);
        } else {
            *children.entry(s.trace.0).or_default() += 1;
            if s.name == span_names::SERVE {
                *serves.entry(s.trace.0).or_default() += 1;
            }
        }
        if let Some(kind) = s.fault {
            let att = faults.entry(kind).or_default();
            att.count += 1;
            att.total_us += s.dur_us;
            if let Some(m) = s.mds {
                *att.per_mds.entry(m).or_default() += s.dur_us;
            }
        }
    }

    for (&trace, &n) in &children {
        if !roots.contains_key(&trace) {
            return Err(TraceCheckError::OrphanSpans { trace, spans: n });
        }
    }

    // Per-op Def. 1 check.
    let mut ops = Vec::with_capacity(roots.len());
    let mut observed_jumps: BTreeMap<NodeId, u32> = BTreeMap::new();
    let mut hop_sum = 0u64;
    for (&trace, root) in &roots {
        let target = NodeId::from_index(root_arg(root, ArgKey::Target)? as usize);
        let locked = root_arg(root, ArgKey::Locked)? == 1;
        let serve_count = serves.get(&trace).copied().unwrap_or(0);
        // Lock-path ops commit on one leader (no forwarding chain);
        // both conventions agree on 0 for their replicated targets.
        let observed = serve_count.saturating_sub(1);
        let analytic = path_jumps(tree, placement, target);
        if observed != analytic {
            return Err(TraceCheckError::HopMismatch {
                trace,
                target: target.index(),
                observed,
                analytic,
            });
        }
        observed_jumps.insert(target, observed);
        hop_sum += u64::from(observed);
        ops.push(TracedOp {
            trace,
            target,
            locked,
            observed_hops: observed,
            analytic_jumps: analytic,
            latency_us: root.dur_us,
        });
    }

    // Aggregate Def. 3 check: substitute observed jumps where we have
    // them, fall back to the analytic value elsewhere, and require the
    // two localities to agree to f64 tolerance.
    let analytic_locality = locality_from_jumps(tree, pop, |n| path_jumps(tree, placement, n));
    let observed_locality = locality_from_jumps(tree, pop, |n| {
        observed_jumps
            .get(&n)
            .copied()
            .unwrap_or_else(|| path_jumps(tree, placement, n))
    });
    let (o, a) = (observed_locality.locality, analytic_locality.locality);
    let agree = if o.is_finite() && a.is_finite() {
        (o - a).abs() <= 1e-9 * a.abs().max(1.0)
    } else {
        o == a
    };
    if !agree {
        return Err(TraceCheckError::LocalityMismatch {
            observed: o,
            analytic: a,
        });
    }

    let mean_observed_hops = if ops.is_empty() {
        0.0
    } else {
        hop_sum as f64 / ops.len() as f64
    };
    Ok(TraceAnalysis {
        ops,
        mean_observed_hops,
        observed_locality,
        analytic_locality,
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultAction, FaultPlan, FaultRule, FaultScope};
    use crate::sim::{SimConfig, Simulator};
    use d2tree_core::{D2TreeConfig, D2TreeScheme};
    use d2tree_metrics::ClusterSpec;
    use d2tree_telemetry::trace::{Sampler, Tracer};
    use d2tree_telemetry::TraceId;
    use std::sync::Arc;

    fn built_scheme(
        ops: usize,
        m: usize,
        seed: u64,
    ) -> (d2tree_workload::Workload, Popularity, D2TreeScheme) {
        let w = d2tree_workload::WorkloadBuilder::new(
            d2tree_workload::TraceProfile::dtr()
                .with_nodes(1_500)
                .with_operations(ops),
        )
        .seed(seed)
        .build();
        let pop = w.popularity();
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(m, 1.0));
        (w, pop, scheme)
    }

    fn traced_strict_replay(
        seed: u64,
        plan: Option<FaultPlan>,
    ) -> (Vec<d2tree_telemetry::Span>, TraceAnalysis) {
        let (w, pop, scheme) = built_scheme(2_000, 4, seed);
        let strict = StrictChainRoute(&scheme);
        let tracer = Arc::new(Tracer::new(Sampler::always(seed)));
        let mut sim = Simulator::new(SimConfig {
            clients: 16,
            seed,
            ..SimConfig::default()
        })
        .with_tracer(Arc::clone(&tracer));
        if let Some(plan) = plan {
            sim = sim.with_faults(plan);
        }
        let out = sim.replay(&w.tree, &w.trace, &strict);
        assert_eq!(out.completed, 2_000);
        let spans = tracer.drain();
        let analysis =
            analyze(&spans, &w.tree, scheme.placement(), &pop).expect("cross-check must pass");
        (spans, analysis)
    }

    #[test]
    fn every_op_matches_def1_and_def3_under_full_sampling() {
        let (spans, analysis) = traced_strict_replay(1, None);
        assert_eq!(analysis.ops.len(), 2_000, "one root span per op");
        assert!(
            spans.len() > 2_000 * 2,
            "roots plus hop spans expected, got {}",
            spans.len()
        );
        // The replay uses the strict router, so observed == analytic is
        // already enforced per-op; spot-check the aggregate too.
        assert_eq!(
            analysis.observed_locality.weighted_jumps,
            analysis.analytic_locality.weighted_jumps
        );
        assert!(analysis.mean_observed_hops >= 0.0);
    }

    #[test]
    fn multi_hop_routes_also_match_def1() {
        // D2-Tree keeps jumps at 0 by construction; a hash mapping
        // scatters the chain, so this exercises observed_hops > 0.
        let (w, pop, _) = built_scheme(2_000, 4, 11);
        let mut hash = d2tree_baselines::HashMapping::new(5);
        hash.build(&w.tree, &pop, &ClusterSpec::homogeneous(4, 1.0));
        let strict = StrictChainRoute(&hash);
        let tracer = Arc::new(Tracer::new(Sampler::always(11)));
        let out = Simulator::new(SimConfig {
            clients: 16,
            seed: 11,
            ..SimConfig::default()
        })
        .with_tracer(Arc::clone(&tracer))
        .replay(&w.tree, &w.trace, &strict);
        assert_eq!(out.completed, 2_000);
        let spans = tracer.drain();
        let analysis =
            analyze(&spans, &w.tree, hash.placement(), &pop).expect("cross-check must pass");
        assert!(
            analysis.ops.iter().any(|o| o.observed_hops > 0),
            "hash mapping must produce multi-hop ops"
        );
    }

    #[test]
    fn tampered_span_counts_are_rejected() {
        let (mut spans, _) = traced_strict_replay(2, None);
        // Duplicate one serve span: its trace now over-counts hops.
        let extra = spans
            .iter()
            .find(|s| s.name == span_names::SERVE)
            .expect("serve spans exist")
            .clone();
        spans.push(extra);
        let (w, pop, scheme) = built_scheme(2_000, 4, 2);
        let err = analyze(&spans, &w.tree, scheme.placement(), &pop)
            .expect_err("tampered trace must fail the Def. 1 check");
        assert!(matches!(err, TraceCheckError::HopMismatch { .. }), "{err}");
    }

    #[test]
    fn orphan_spans_are_detected() {
        let (mut spans, _) = traced_strict_replay(3, None);
        // Invent a child span for a trace id that has no root.
        let mut orphan = spans
            .iter()
            .find(|s| s.name == span_names::SERVE)
            .expect("serve spans exist")
            .clone();
        orphan.trace = TraceId(u64::MAX);
        spans.push(orphan);
        let (w, pop, scheme) = built_scheme(2_000, 4, 3);
        let err = analyze(&spans, &w.tree, scheme.placement(), &pop)
            .expect_err("orphan spans must be rejected");
        assert!(matches!(err, TraceCheckError::OrphanSpans { .. }), "{err}");
    }

    #[test]
    fn chaos_seed7_tags_every_injected_fault_kind_and_attributes_latency() {
        let plan = FaultPlan::new(7)
            .with_rule(
                FaultRule::new(FaultScope::AllLinks, FaultAction::Drop).with_probability(0.05),
            )
            .with_rule(
                FaultRule::new(
                    FaultScope::AllLinks,
                    FaultAction::Delay {
                        fixed_ms: 1,
                        jitter_ms: 1,
                    },
                )
                .with_probability(0.1),
            )
            .with_rule(
                FaultRule::new(FaultScope::AllLinks, FaultAction::Duplicate).with_probability(0.05),
            );
        let (_, analysis) = traced_strict_replay(7, Some(plan));
        for kind in [FaultKind::Drop, FaultKind::Delay, FaultKind::Duplicate] {
            let att = analysis
                .faults
                .get(&kind)
                .unwrap_or_else(|| panic!("no span tagged with {:?}", kind));
            assert!(att.count > 0);
            assert!(
                att.total_us > 0,
                "{kind:?} spans must carry the latency they cost"
            );
            assert!(
                !att.per_mds.is_empty(),
                "{kind:?} latency must be attributed to a faulted hop"
            );
        }
    }

    #[test]
    fn same_seed_produces_identical_digests() {
        let run = |seed: u64| {
            let (w, _pop, scheme) = built_scheme(1_000, 3, seed);
            let strict = StrictChainRoute(&scheme);
            let tracer = Arc::new(Tracer::new(Sampler::always(seed)));
            let _ = Simulator::new(SimConfig {
                clients: 8,
                seed,
                ..SimConfig::default()
            })
            .with_tracer(Arc::clone(&tracer))
            .replay(&w.tree, &w.trace, &strict);
            d2tree_telemetry::trace::digest(&tracer.drain())
        };
        assert_eq!(run(42), run(42), "same seed must be byte-identical");
        assert_ne!(run(42), run(43), "different seeds should differ");
    }

    #[test]
    fn tracing_is_purely_observational() {
        let (w, _pop, scheme) = built_scheme(1_500, 3, 5);
        let sim = Simulator::new(SimConfig {
            clients: 16,
            seed: 5,
            ..SimConfig::default()
        });
        let plain = sim.replay(&w.tree, &w.trace, &scheme);
        let traced = sim
            .clone()
            .with_tracer(Arc::new(Tracer::new(Sampler::always(5))))
            .replay(&w.tree, &w.trace, &scheme);
        assert_eq!(plain, traced, "tracing must never change outcomes");
    }
}
