//! Deterministic fault injection for the cluster transports.
//!
//! A [`FaultPlan`] is plain seeded data: a list of [`FaultRule`]s, each
//! scoping a perturbation ([`FaultAction`]) to a set of network edges
//! ([`FaultScope`]) with a firing probability and an optional activity
//! window. Both the live threaded runtime ([`crate::live`]) and the
//! discrete-event simulator ([`crate::sim`]) consult the plan at every
//! send through a [`FaultInjector`] — the runtime companion that owns the
//! seeded RNG and (optionally) journals every injected fault to a
//! [`Registry`].
//!
//! Determinism: an injector created twice from the same plan and asked
//! the same sequence of [`FaultInjector::decide`] questions returns the
//! same sequence of [`FaultDecision`]s. The simulator and the chaos
//! engine ([`crate::chaos`]) exploit this for replayable failure
//! schedules; the live cluster is wall-clock driven, so there the plan
//! reproduces the *distribution* of faults, not an identical trace.
//!
//! Partitions are not a separate mechanism: a bidirectional partition of
//! an MDS is a set of [`FaultAction::Drop`] rules at probability 1.0
//! over all of its edges, bounded by an activity window — see
//! [`FaultRule::partition`].

use std::sync::{Arc, Mutex};

use d2tree_telemetry::{names, Counter, EventKind, FaultKind, MetricKey, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One directed network edge in the cluster. The `u16` is always the
/// MDS id on the server end of the edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEdge {
    /// A client request travelling to an MDS.
    ClientToMds(u16),
    /// An MDS reply travelling back to a client.
    MdsToClient(u16),
    /// An MDS heartbeat (or registration) travelling to the Monitor.
    MdsToMonitor(u16),
    /// An MDS interaction with the global-layer lock service.
    MdsToLock(u16),
    /// A control-plane consensus message travelling *to* one Monitor
    /// replica (the `u16` is the receiving replica's id, not an MDS).
    MonitorPeer(u16),
}

impl NetEdge {
    /// The MDS (or, for [`NetEdge::MonitorPeer`], the Monitor replica)
    /// on the server end of this edge.
    #[must_use]
    pub fn mds(self) -> u16 {
        match self {
            NetEdge::ClientToMds(m)
            | NetEdge::MdsToClient(m)
            | NetEdge::MdsToMonitor(m)
            | NetEdge::MdsToLock(m)
            | NetEdge::MonitorPeer(m) => m,
        }
    }
}

/// Which edges a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScope {
    /// Every edge in the cluster.
    AllLinks,
    /// Every edge touching one MDS (client, monitor and lock links) —
    /// with a [`FaultAction::Drop`] this is a bidirectional partition.
    Mds(u16),
    /// The client↔MDS edges of one MDS, both directions.
    ClientLink(u16),
    /// The MDS↔Monitor edge of one MDS.
    MonitorLink(u16),
    /// The MDS↔lock-service edge of one MDS.
    LockLink(u16),
    /// Every consensus message *received by* one Monitor replica — with
    /// a [`FaultAction::Drop`] this isolates the replica from its peers
    /// (messages it sends still reach others unless their inbound links
    /// are cut too; pair one rule per replica for a full partition).
    PeerLink(u16),
}

impl FaultScope {
    fn matches(self, edge: NetEdge) -> bool {
        match self {
            FaultScope::AllLinks => true,
            // MDS scopes never match replica↔replica links: the id
            // spaces are distinct (use `PeerLink` for replicas).
            FaultScope::Mds(m) => edge.mds() == m && !matches!(edge, NetEdge::MonitorPeer(_)),
            FaultScope::ClientLink(m) => {
                matches!(edge, NetEdge::ClientToMds(k) | NetEdge::MdsToClient(k) if k == m)
            }
            FaultScope::MonitorLink(m) => matches!(edge, NetEdge::MdsToMonitor(k) if k == m),
            FaultScope::LockLink(m) => matches!(edge, NetEdge::MdsToLock(k) if k == m),
            FaultScope::PeerLink(r) => matches!(edge, NetEdge::MonitorPeer(k) if k == r),
        }
    }
}

/// What a firing rule does to the message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Silently discard the message.
    Drop,
    /// Postpone delivery by `fixed_ms` plus a uniform jitter in
    /// `0..=jitter_ms`.
    Delay {
        /// Deterministic component of the delay.
        fixed_ms: u64,
        /// Upper bound of the uniform random component.
        jitter_ms: u64,
    },
    /// Deliver the message twice.
    Duplicate,
    /// Perturb delivery order by a uniform jitter in `0..=jitter_ms`
    /// (a pure-jitter delay, so two messages sent back-to-back can
    /// arrive swapped).
    Reorder {
        /// Upper bound of the uniform reorder jitter.
        jitter_ms: u64,
    },
}

/// A perturbation of an MDS's durable store rather than of a network
/// message. Storage faults are consulted by the store-chaos engine (and
/// by `LiveCluster` crash handling) at durability boundaries — crash
/// points and fsyncs — not per message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// The crash tears the last in-flight WAL frame: only a prefix of
    /// the unsynced buffer reaches disk, cutting a frame mid-way.
    TornWrite,
    /// An fsync that claimed success persisted only a prefix of the
    /// buffered bytes (lost-write firmware bug model).
    PartialFsync,
    /// A bit of an already-durable, CRC-covered record is flipped on
    /// disk (latent media corruption model).
    CorruptRecord,
}

impl StorageFault {
    /// The journal label for this fault.
    #[must_use]
    pub fn kind(self) -> FaultKind {
        match self {
            StorageFault::TornWrite => FaultKind::TornWrite,
            StorageFault::PartialFsync => FaultKind::PartialFsync,
            StorageFault::CorruptRecord => FaultKind::CorruptRecord,
        }
    }
}

/// One probabilistic storage perturbation, scoped to one MDS's store or
/// to all of them, with the same optional activity window as
/// [`FaultRule`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageFaultRule {
    /// The MDS whose store the rule watches; `None` means every store.
    pub mds: Option<u16>,
    /// What happens to the store when the rule fires.
    pub fault: StorageFault,
    /// Per-consultation firing probability in `[0, 1]`.
    pub probability: f64,
    /// Half-open `[from_ms, until_ms)` activity window; `None` means
    /// always active.
    pub active_ms: Option<(u64, u64)>,
}

impl StorageFaultRule {
    /// A rule that always fires for every store, with no window.
    #[must_use]
    pub fn new(fault: StorageFault) -> Self {
        StorageFaultRule {
            mds: None,
            fault,
            probability: 1.0,
            active_ms: None,
        }
    }

    /// Restricts the rule to one MDS's store.
    #[must_use]
    pub fn on_mds(mut self, mds: u16) -> Self {
        self.mds = Some(mds);
        self
    }

    /// Sets the per-consultation firing probability.
    #[must_use]
    pub fn with_probability(mut self, p: f64) -> Self {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    /// Restricts the rule to the half-open window `[from_ms, until_ms)`.
    #[must_use]
    pub fn during(mut self, from_ms: u64, until_ms: u64) -> Self {
        self.active_ms = Some((from_ms, until_ms));
        self
    }

    fn active_at(&self, now_ms: u64) -> bool {
        match self.active_ms {
            None => true,
            Some((from, until)) => now_ms >= from && now_ms < until,
        }
    }
}

/// One scoped, probabilistic perturbation with an optional activity
/// window (in the clock domain of the transport consulting the plan —
/// virtual ms for the simulator/chaos engine, wall ms since cluster
/// start for the live runtime).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// Which edges the rule watches.
    pub scope: FaultScope,
    /// What it does when it fires.
    pub action: FaultAction,
    /// Per-message firing probability in `[0, 1]`.
    pub probability: f64,
    /// Half-open `[from_ms, until_ms)` activity window; `None` means
    /// always active.
    pub active_ms: Option<(u64, u64)>,
}

impl FaultRule {
    /// A rule that always fires, with no activity window.
    #[must_use]
    pub fn new(scope: FaultScope, action: FaultAction) -> Self {
        FaultRule {
            scope,
            action,
            probability: 1.0,
            active_ms: None,
        }
    }

    /// Sets the per-message firing probability.
    #[must_use]
    pub fn with_probability(mut self, p: f64) -> Self {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    /// Restricts the rule to the half-open window `[from_ms, until_ms)`.
    #[must_use]
    pub fn during(mut self, from_ms: u64, until_ms: u64) -> Self {
        self.active_ms = Some((from_ms, until_ms));
        self
    }

    /// A bidirectional partition: drop everything in `scope` during
    /// `[from_ms, until_ms)`.
    #[must_use]
    pub fn partition(scope: FaultScope, from_ms: u64, until_ms: u64) -> Self {
        FaultRule::new(scope, FaultAction::Drop).during(from_ms, until_ms)
    }

    fn active_at(&self, now_ms: u64) -> bool {
        match self.active_ms {
            None => true,
            Some((from, until)) => now_ms >= from && now_ms < until,
        }
    }
}

/// A seeded, serializable-in-spirit fault schedule: pure data, no
/// runtime state. Feed it to [`FaultInjector::new`],
/// `LiveCluster::start_with_faults` or `Simulator::with_faults`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the injector's RNG.
    pub seed: u64,
    /// The rules, consulted in order; the first firing rule wins.
    pub rules: Vec<FaultRule>,
    /// Storage-fault rules, consulted (in order, first firing rule
    /// wins) at durability boundaries instead of per message.
    pub storage_rules: Vec<StorageFaultRule>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
            storage_rules: Vec::new(),
        }
    }

    /// Appends a rule (builder style).
    #[must_use]
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Appends a storage-fault rule (builder style).
    #[must_use]
    pub fn with_storage_rule(mut self, rule: StorageFaultRule) -> Self {
        self.storage_rules.push(rule);
        self
    }

    /// Whether the plan has no rules of either kind.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.storage_rules.is_empty()
    }
}

/// The injector's verdict for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver normally.
    Deliver,
    /// Discard the message.
    Drop,
    /// Deliver after this many milliseconds.
    Delay(u64),
    /// Deliver the message twice.
    DeliverTwice,
}

impl FaultDecision {
    /// The [`FaultKind`] a tracer should tag the affected hop's span
    /// with, or `None` for a clean delivery.
    #[must_use]
    pub fn kind(&self) -> Option<FaultKind> {
        match self {
            FaultDecision::Deliver => None,
            FaultDecision::Drop => Some(FaultKind::Drop),
            FaultDecision::Delay(_) => Some(FaultKind::Delay),
            FaultDecision::DeliverTwice => Some(FaultKind::Duplicate),
        }
    }
}

struct FaultTelemetry {
    registry: Arc<Registry>,
    dropped: Arc<Counter>,
    delayed: Arc<Counter>,
    duplicated: Arc<Counter>,
    storage: Arc<Counter>,
}

/// Runtime companion of a [`FaultPlan`]: owns the seeded RNG and the
/// optional telemetry handles. Cheap to consult when the plan is empty.
pub struct FaultInjector {
    rules: Vec<FaultRule>,
    storage_rules: Vec<StorageFaultRule>,
    rng: Mutex<StdRng>,
    telemetry: Option<FaultTelemetry>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("rules", &self.rules.len())
            .field("instrumented", &self.telemetry.is_some())
            .finish()
    }
}

impl FaultInjector {
    /// An injector for `plan`, with a fresh RNG seeded from
    /// `plan.seed`. Two injectors built from the same plan make
    /// identical decision sequences.
    #[must_use]
    pub fn new(plan: &FaultPlan) -> Self {
        FaultInjector {
            rules: plan.rules.clone(),
            storage_rules: plan.storage_rules.clone(),
            rng: Mutex::new(StdRng::seed_from_u64(plan.seed)),
            telemetry: None,
        }
    }

    /// Journals every injected fault to `registry` and counts them in
    /// `faults_dropped/delayed/duplicated_total`.
    #[must_use]
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Self {
        let dropped = registry.counter(MetricKey::global(names::FAULTS_DROPPED));
        let delayed = registry.counter(MetricKey::global(names::FAULTS_DELAYED));
        let duplicated = registry.counter(MetricKey::global(names::FAULTS_DUPLICATED));
        let storage = registry.counter(MetricKey::global(names::FAULTS_STORAGE));
        self.telemetry = Some(FaultTelemetry {
            registry,
            dropped,
            delayed,
            duplicated,
            storage,
        });
        self
    }

    /// Whether the injector has any rules at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.storage_rules.is_empty()
    }

    /// Decides the fate of one message crossing `edge` at `now_ms`.
    /// Rules are consulted in plan order; the first firing rule wins.
    /// Every non-`Deliver` decision is journaled and counted when a
    /// registry is attached.
    pub fn decide(&self, edge: NetEdge, now_ms: u64) -> FaultDecision {
        if self.rules.is_empty() {
            return FaultDecision::Deliver;
        }
        let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        for rule in &self.rules {
            if !rule.active_at(now_ms) || !rule.scope.matches(edge) {
                continue;
            }
            let fires = rule.probability >= 1.0
                || (rule.probability > 0.0 && rng.gen_bool(rule.probability));
            if !fires {
                continue;
            }
            let (decision, kind) = match rule.action {
                FaultAction::Drop => (FaultDecision::Drop, FaultKind::Drop),
                FaultAction::Delay {
                    fixed_ms,
                    jitter_ms,
                } => {
                    let jitter = if jitter_ms == 0 {
                        0
                    } else {
                        rng.gen_range(0..=jitter_ms)
                    };
                    (FaultDecision::Delay(fixed_ms + jitter), FaultKind::Delay)
                }
                FaultAction::Duplicate => (FaultDecision::DeliverTwice, FaultKind::Duplicate),
                FaultAction::Reorder { jitter_ms } => {
                    let jitter = if jitter_ms == 0 {
                        0
                    } else {
                        rng.gen_range(0..=jitter_ms)
                    };
                    (FaultDecision::Delay(jitter), FaultKind::Reorder)
                }
            };
            drop(rng);
            self.record(kind, edge.mds());
            return decision;
        }
        FaultDecision::Deliver
    }

    /// Decides whether a storage fault strikes `mds`'s store at the
    /// durability boundary happening at `now_ms`. Storage rules are
    /// consulted in plan order; the first firing rule wins. A firing
    /// rule is journaled and counted when a registry is attached.
    pub fn decide_storage(&self, mds: u16, now_ms: u64) -> Option<StorageFault> {
        if self.storage_rules.is_empty() {
            return None;
        }
        let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        for rule in &self.storage_rules {
            if !rule.active_at(now_ms) || rule.mds.is_some_and(|m| m != mds) {
                continue;
            }
            let fires = rule.probability >= 1.0
                || (rule.probability > 0.0 && rng.gen_bool(rule.probability));
            if !fires {
                continue;
            }
            drop(rng);
            self.record(rule.fault.kind(), mds);
            return Some(rule.fault);
        }
        None
    }

    fn record(&self, kind: FaultKind, mds: u16) {
        let Some(tel) = &self.telemetry else { return };
        match kind {
            FaultKind::Drop => tel.dropped.inc(),
            FaultKind::Delay | FaultKind::Reorder => tel.delayed.inc(),
            FaultKind::Duplicate => tel.duplicated.inc(),
            FaultKind::TornWrite | FaultKind::PartialFsync | FaultKind::CorruptRecord => {
                tel.storage.inc();
            }
        }
        tel.registry
            .journal()
            .record(EventKind::FaultInjected { fault: kind, mds });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_always_delivers() {
        let inj = FaultInjector::new(&FaultPlan::new(1));
        for k in 0..8 {
            assert_eq!(
                inj.decide(NetEdge::ClientToMds(k), 0),
                FaultDecision::Deliver
            );
        }
    }

    #[test]
    fn same_plan_same_decisions() {
        let plan = FaultPlan::new(42)
            .with_rule(
                FaultRule::new(FaultScope::AllLinks, FaultAction::Drop).with_probability(0.3),
            )
            .with_rule(FaultRule::new(
                FaultScope::Mds(1),
                FaultAction::Delay {
                    fixed_ms: 2,
                    jitter_ms: 5,
                },
            ));
        let a = FaultInjector::new(&plan);
        let b = FaultInjector::new(&plan);
        for i in 0..200u16 {
            let edge = NetEdge::ClientToMds(i % 3);
            assert_eq!(a.decide(edge, u64::from(i)), b.decide(edge, u64::from(i)));
        }
    }

    #[test]
    fn partitions_respect_their_window() {
        let plan =
            FaultPlan::new(7).with_rule(FaultRule::partition(FaultScope::MonitorLink(2), 100, 200));
        let inj = FaultInjector::new(&plan);
        assert_eq!(
            inj.decide(NetEdge::MdsToMonitor(2), 50),
            FaultDecision::Deliver
        );
        assert_eq!(
            inj.decide(NetEdge::MdsToMonitor(2), 150),
            FaultDecision::Drop
        );
        assert_eq!(
            inj.decide(NetEdge::MdsToMonitor(2), 200),
            FaultDecision::Deliver
        );
        // Other MDSs and other edges of the same MDS are untouched.
        assert_eq!(
            inj.decide(NetEdge::MdsToMonitor(1), 150),
            FaultDecision::Deliver
        );
        assert_eq!(
            inj.decide(NetEdge::ClientToMds(2), 150),
            FaultDecision::Deliver
        );
    }

    #[test]
    fn scopes_match_the_right_edges() {
        assert!(FaultScope::Mds(3).matches(NetEdge::MdsToLock(3)));
        assert!(FaultScope::Mds(3).matches(NetEdge::MdsToClient(3)));
        assert!(!FaultScope::Mds(3).matches(NetEdge::ClientToMds(2)));
        assert!(FaultScope::ClientLink(1).matches(NetEdge::ClientToMds(1)));
        assert!(FaultScope::ClientLink(1).matches(NetEdge::MdsToClient(1)));
        assert!(!FaultScope::ClientLink(1).matches(NetEdge::MdsToMonitor(1)));
        assert!(FaultScope::LockLink(0).matches(NetEdge::MdsToLock(0)));
        assert!(!FaultScope::LockLink(0).matches(NetEdge::MdsToMonitor(0)));
    }

    #[test]
    fn delay_includes_fixed_and_bounded_jitter() {
        let plan = FaultPlan::new(5).with_rule(FaultRule::new(
            FaultScope::AllLinks,
            FaultAction::Delay {
                fixed_ms: 10,
                jitter_ms: 4,
            },
        ));
        let inj = FaultInjector::new(&plan);
        for _ in 0..100 {
            match inj.decide(NetEdge::ClientToMds(0), 0) {
                FaultDecision::Delay(ms) => assert!((10..=14).contains(&ms), "delay {ms}"),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn storage_rules_scope_window_and_determinism() {
        let plan = FaultPlan::new(11)
            .with_storage_rule(
                StorageFaultRule::new(StorageFault::TornWrite)
                    .on_mds(1)
                    .during(100, 200),
            )
            .with_storage_rule(
                StorageFaultRule::new(StorageFault::PartialFsync).with_probability(0.4),
            );
        assert!(!plan.is_empty());
        let a = FaultInjector::new(&plan);
        let b = FaultInjector::new(&plan);
        // Scoped rule: only mds 1 inside [100, 200).
        assert_eq!(a.decide_storage(1, 150), Some(StorageFault::TornWrite));
        assert_eq!(b.decide_storage(1, 150), Some(StorageFault::TornWrite));
        assert_eq!(a.decide_storage(1, 250), b.decide_storage(1, 250));
        // Same plan, same seed: identical probabilistic decisions.
        for t in 0..200u64 {
            assert_eq!(a.decide_storage(0, t), b.decide_storage(0, t));
        }
        // The fallthrough rule does fire sometimes and never tears.
        let hits = (0..200u64)
            .filter(|&t| a.decide_storage(2, t) == Some(StorageFault::PartialFsync))
            .count();
        assert!(hits > 0, "probabilistic storage rule never fired");
    }

    #[test]
    fn storage_faults_are_journaled_and_counted() {
        let registry = Arc::new(Registry::new());
        let plan =
            FaultPlan::new(3).with_storage_rule(StorageFaultRule::new(StorageFault::CorruptRecord));
        let inj = FaultInjector::new(&plan).with_registry(Arc::clone(&registry));
        assert_eq!(inj.decide_storage(2, 0), Some(StorageFault::CorruptRecord));
        let snap = registry.snapshot();
        let n = snap
            .counters
            .iter()
            .find(|(k, _)| k.name == names::FAULTS_STORAGE)
            .map(|(_, v)| *v);
        assert_eq!(n, Some(1));
        assert!(registry.journal().snapshot().iter().any(|e| matches!(
            e.kind,
            EventKind::FaultInjected {
                fault: FaultKind::CorruptRecord,
                mds: 2
            }
        )));
    }

    #[test]
    fn injector_journals_and_counts_faults() {
        let registry = Arc::new(Registry::new());
        let plan = FaultPlan::new(9)
            .with_rule(FaultRule::new(FaultScope::AllLinks, FaultAction::Duplicate));
        let inj = FaultInjector::new(&plan).with_registry(Arc::clone(&registry));
        assert_eq!(
            inj.decide(NetEdge::ClientToMds(4), 0),
            FaultDecision::DeliverTwice
        );
        let snap = registry.snapshot();
        let dup = snap
            .counters
            .iter()
            .find(|(k, _)| k.name == names::FAULTS_DUPLICATED)
            .map(|(_, v)| *v);
        assert_eq!(dup, Some(1));
        assert!(registry.journal().snapshot().iter().any(|e| matches!(
            e.kind,
            EventKind::FaultInjected {
                fault: FaultKind::Duplicate,
                mds: 4
            }
        )));
    }
}
