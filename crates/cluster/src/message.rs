//! Wire protocol of the MDS cluster, with a length-prefixed binary codec.
//!
//! The live runtime sends these frames over its channel "network"; the
//! codec is the same one a TCP deployment would use (length-prefixed,
//! fixed-width big-endian fields), so the tests exercise real
//! encode/decode paths.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use d2tree_metrics::MdsId;
use d2tree_namespace::NodeId;
use d2tree_workload::OpKind;
use serde::{Deserialize, Serialize};

use crate::consensus::{Command, Entry, PeerMsg};

/// Unique id a client assigns to each outstanding request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

/// A metadata request from a client (or a forwarding MDS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Client-assigned id, echoed in the response.
    pub id: RequestId,
    /// Operation kind.
    pub kind: OpKind,
    /// Target metadata node.
    pub target: NodeId,
    /// How many times this request has been forwarded between MDSs.
    pub hops: u32,
    /// Trace context propagated across the wire when the operation is
    /// sampled: `(trace_id, parent_span_id)`. Servers parent their
    /// serve spans on it; `None` rides as zeroes on the wire.
    pub trace: Option<(u64, u64)>,
}

/// What an MDS answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResponseBody {
    /// The operation was served by this MDS.
    Served {
        /// Node the metadata belongs to.
        node: NodeId,
    },
    /// This MDS does not own the target; retry at the given server.
    Redirect {
        /// The server believed to own the target.
        owner: MdsId,
    },
    /// The target does not exist (or its owner is down and not yet
    /// re-homed).
    NotFound,
}

/// A response frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Response {
    /// Echoed request id.
    pub id: RequestId,
    /// Serving MDS.
    pub from: MdsId,
    /// Outcome.
    pub body: ResponseBody,
    /// Total forwarding hops the request experienced.
    pub hops: u32,
}

const KIND_READ: u8 = 0;
const KIND_WRITE: u8 = 1;
const KIND_UPDATE: u8 = 2;

const BODY_SERVED: u8 = 0;
const BODY_REDIRECT: u8 = 1;
const BODY_NOT_FOUND: u8 = 2;

/// Body length of a [`Request`] frame (id + kind + target + hops +
/// trace flag + trace id + parent span id).
pub const REQUEST_WIRE_BYTES: usize = 8 + 1 + 4 + 4 + 1 + 8 + 8;
/// Body length of a [`Response`] frame (id + from + tag + node + owner
/// + hops).
pub const RESPONSE_WIRE_BYTES: usize = 8 + 2 + 1 + 4 + 2 + 4;

impl Request {
    /// Encodes the request as one length-prefixed frame.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(4 + REQUEST_WIRE_BYTES);
        buf.put_u32(REQUEST_WIRE_BYTES as u32);
        buf.put_u64(self.id.0);
        buf.put_u8(match self.kind {
            OpKind::Read => KIND_READ,
            OpKind::Write => KIND_WRITE,
            OpKind::Update => KIND_UPDATE,
        });
        buf.put_u32(self.target.index() as u32);
        buf.put_u32(self.hops);
        match self.trace {
            Some((trace, span)) => {
                buf.put_u8(1);
                buf.put_u64(trace);
                buf.put_u64(span);
            }
            None => {
                buf.put_u8(0);
                buf.put_u64(0);
                buf.put_u64(0);
            }
        }
        buf.freeze()
    }

    /// Decodes one frame produced by [`encode`](Self::encode).
    ///
    /// Returns `None` if the buffer does not hold a complete, well-formed
    /// frame.
    #[must_use]
    pub fn decode(buf: &mut Bytes) -> Option<Request> {
        if buf.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes(buf[..4].try_into().ok()?) as usize;
        if buf.len() < 4 + len || len != REQUEST_WIRE_BYTES {
            return None;
        }
        buf.advance(4);
        let id = RequestId(buf.get_u64());
        let kind = match buf.get_u8() {
            KIND_READ => OpKind::Read,
            KIND_WRITE => OpKind::Write,
            KIND_UPDATE => OpKind::Update,
            _ => return None,
        };
        let target = NodeId::from_index(buf.get_u32() as usize);
        let hops = buf.get_u32();
        let trace = match buf.get_u8() {
            0 => {
                // The context slots must ride as zeroes when unsampled.
                let (t, s) = (buf.get_u64(), buf.get_u64());
                if t != 0 || s != 0 {
                    return None;
                }
                None
            }
            1 => Some((buf.get_u64(), buf.get_u64())),
            _ => return None,
        };
        Some(Request {
            id,
            kind,
            target,
            hops,
            trace,
        })
    }
}

impl Response {
    /// Encodes the response as one length-prefixed frame.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        // The length prefix must cover the whole 21-byte body; it used
        // to claim 20, which never mattered over the channel shims (each
        // message arrived pre-framed) but desyncs a real byte stream and
        // let a truncated frame panic the decoder mid-read.
        let mut buf = BytesMut::with_capacity(4 + RESPONSE_WIRE_BYTES);
        buf.put_u32(RESPONSE_WIRE_BYTES as u32);
        buf.put_u64(self.id.0);
        buf.put_u16(self.from.0);
        match self.body {
            ResponseBody::Served { node } => {
                buf.put_u8(BODY_SERVED);
                buf.put_u32(node.index() as u32);
                buf.put_u16(0);
            }
            ResponseBody::Redirect { owner } => {
                buf.put_u8(BODY_REDIRECT);
                buf.put_u32(0);
                buf.put_u16(owner.0);
            }
            ResponseBody::NotFound => {
                buf.put_u8(BODY_NOT_FOUND);
                buf.put_u32(0);
                buf.put_u16(0);
            }
        }
        buf.put_u32(self.hops);
        buf.freeze()
    }

    /// Decodes one frame produced by [`encode`](Self::encode).
    ///
    /// Returns `None` if the buffer does not hold a complete, well-formed
    /// frame.
    #[must_use]
    pub fn decode(buf: &mut Bytes) -> Option<Response> {
        if buf.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes(buf[..4].try_into().ok()?) as usize;
        if buf.len() < 4 + len || len != RESPONSE_WIRE_BYTES {
            return None;
        }
        buf.advance(4);
        let id = RequestId(buf.get_u64());
        let from = MdsId(buf.get_u16());
        let tag = buf.get_u8();
        let node_raw = buf.get_u32();
        let owner_raw = buf.get_u16();
        let hops = buf.get_u32();
        let body = match tag {
            BODY_SERVED => ResponseBody::Served {
                node: NodeId::from_index(node_raw as usize),
            },
            BODY_REDIRECT => ResponseBody::Redirect {
                owner: MdsId(owner_raw),
            },
            BODY_NOT_FOUND => ResponseBody::NotFound,
            _ => return None,
        };
        Some(Response {
            id,
            from,
            body,
            hops,
        })
    }
}

const PEER_REQUEST_VOTE: u8 = 0;
const PEER_VOTE_REPLY: u8 = 1;
const PEER_APPEND: u8 = 2;
const PEER_APPEND_REPLY: u8 = 3;

/// Encoded size of one replicated-log [`Entry`] inside an `Append`
/// frame: term + index + opcode + three operands.
const ENTRY_WIRE_BYTES: usize = 8 + 8 + 1 + 8 + 8 + 8;

fn put_entry(buf: &mut BytesMut, e: &Entry) {
    let (op, a, b, c) = e.cmd.to_wire();
    buf.put_u64(e.term);
    buf.put_u64(e.index);
    buf.put_u8(op);
    buf.put_u64(a);
    buf.put_u64(b);
    buf.put_u64(c);
}

fn get_entry(buf: &mut Bytes) -> Option<Entry> {
    let term = buf.get_u64();
    let index = buf.get_u64();
    let op = buf.get_u8();
    let (a, b, c) = (buf.get_u64(), buf.get_u64(), buf.get_u64());
    Some(Entry {
        term,
        index,
        cmd: Command::from_wire(op, a, b, c)?,
    })
}

impl PeerMsg {
    /// Encodes the consensus message as one length-prefixed frame,
    /// using the same codec conventions as [`Request`]/[`Response`].
    #[must_use]
    pub fn encode(&self) -> Bytes {
        match self {
            PeerMsg::RequestVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => {
                let mut buf = BytesMut::with_capacity(4 + 27);
                buf.put_u32(27);
                buf.put_u8(PEER_REQUEST_VOTE);
                buf.put_u64(*term);
                buf.put_u16(*candidate);
                buf.put_u64(*last_log_index);
                buf.put_u64(*last_log_term);
                buf.freeze()
            }
            PeerMsg::VoteReply {
                term,
                voter,
                granted,
            } => {
                let mut buf = BytesMut::with_capacity(4 + 12);
                buf.put_u32(12);
                buf.put_u8(PEER_VOTE_REPLY);
                buf.put_u64(*term);
                buf.put_u16(*voter);
                buf.put_u8(u8::from(*granted));
                buf.freeze()
            }
            PeerMsg::Append {
                term,
                leader,
                prev_index,
                prev_term,
                commit,
                entries,
            } => {
                let len = 37 + entries.len() * ENTRY_WIRE_BYTES;
                let mut buf = BytesMut::with_capacity(4 + len);
                buf.put_u32(len as u32);
                buf.put_u8(PEER_APPEND);
                buf.put_u64(*term);
                buf.put_u16(*leader);
                buf.put_u64(*prev_index);
                buf.put_u64(*prev_term);
                buf.put_u64(*commit);
                buf.put_u16(entries.len() as u16);
                for e in entries {
                    put_entry(&mut buf, e);
                }
                buf.freeze()
            }
            PeerMsg::AppendReply {
                term,
                follower,
                success,
                match_index,
            } => {
                let mut buf = BytesMut::with_capacity(4 + 20);
                buf.put_u32(20);
                buf.put_u8(PEER_APPEND_REPLY);
                buf.put_u64(*term);
                buf.put_u16(*follower);
                buf.put_u8(u8::from(*success));
                buf.put_u64(*match_index);
                buf.freeze()
            }
        }
    }

    /// Decodes one frame produced by [`encode`](Self::encode).
    ///
    /// Returns `None` if the buffer does not hold a complete,
    /// well-formed frame (truncation, bad tag, length/count mismatch,
    /// or an entry whose command opcode is unknown).
    #[must_use]
    pub fn decode(buf: &mut Bytes) -> Option<PeerMsg> {
        if buf.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes(buf[..4].try_into().ok()?) as usize;
        if buf.len() < 4 + len || len < 1 {
            return None;
        }
        let tag = buf[4];
        let expected = match tag {
            PEER_REQUEST_VOTE => 27,
            PEER_VOTE_REPLY => 12,
            PEER_APPEND => {
                if len < 37 {
                    return None;
                }
                let count = u16::from_be_bytes(buf[4 + 35..4 + 37].try_into().ok()?) as usize;
                37 + count * ENTRY_WIRE_BYTES
            }
            PEER_APPEND_REPLY => 20,
            _ => return None,
        };
        if len != expected {
            return None;
        }
        buf.advance(5);
        match tag {
            PEER_REQUEST_VOTE => Some(PeerMsg::RequestVote {
                term: buf.get_u64(),
                candidate: buf.get_u16(),
                last_log_index: buf.get_u64(),
                last_log_term: buf.get_u64(),
            }),
            PEER_VOTE_REPLY => {
                let term = buf.get_u64();
                let voter = buf.get_u16();
                let granted = match buf.get_u8() {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                Some(PeerMsg::VoteReply {
                    term,
                    voter,
                    granted,
                })
            }
            PEER_APPEND => {
                let term = buf.get_u64();
                let leader = buf.get_u16();
                let prev_index = buf.get_u64();
                let prev_term = buf.get_u64();
                let commit = buf.get_u64();
                let count = buf.get_u16() as usize;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    entries.push(get_entry(buf)?);
                }
                Some(PeerMsg::Append {
                    term,
                    leader,
                    prev_index,
                    prev_term,
                    commit,
                    entries,
                })
            }
            PEER_APPEND_REPLY => {
                let term = buf.get_u64();
                let follower = buf.get_u16();
                let success = match buf.get_u8() {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                Some(PeerMsg::AppendReply {
                    term,
                    follower,
                    success,
                    match_index: buf.get_u64(),
                })
            }
            _ => unreachable!("tag validated above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        for kind in [OpKind::Read, OpKind::Write, OpKind::Update] {
            let req = Request {
                id: RequestId(0xDEAD_BEEF),
                kind,
                target: NodeId::from_index(12345),
                hops: 3,
                trace: None,
            };
            let mut framed = req.encode();
            assert_eq!(Request::decode(&mut framed), Some(req));
            assert!(framed.is_empty(), "frame fully consumed");
        }
    }

    #[test]
    fn trace_context_roundtrips_and_unsampled_slots_must_be_zero() {
        let req = Request {
            id: RequestId(7),
            kind: OpKind::Write,
            target: NodeId::from_index(3),
            hops: 1,
            trace: Some((0xAB, 0xCD)),
        };
        let mut framed = req.encode();
        assert_eq!(Request::decode(&mut framed), Some(req));

        let untraced = Request { trace: None, ..req };
        let mut raw = BytesMut::from(&untraced.encode()[..]);
        // Frame body starts at 4; id(8) + kind(1) + target(4) + hops(4)
        // put the flag at offset 21 and the trace id right after it.
        assert_eq!(raw[4 + 17], 0);
        raw[4 + 18] = 0xFF; // junk in a supposedly-empty trace slot
        let mut frame = raw.freeze();
        assert_eq!(Request::decode(&mut frame), None);
    }

    #[test]
    fn response_roundtrip() {
        let bodies = [
            ResponseBody::Served {
                node: NodeId::from_index(7),
            },
            ResponseBody::Redirect { owner: MdsId(31) },
            ResponseBody::NotFound,
        ];
        for body in bodies {
            let resp = Response {
                id: RequestId(42),
                from: MdsId(5),
                body,
                hops: 2,
            };
            let mut framed = resp.encode();
            assert_eq!(Response::decode(&mut framed), Some(resp));
            assert!(framed.is_empty(), "frame fully consumed: {resp:?}");
        }
    }

    fn sample_responses() -> Vec<Response> {
        [
            ResponseBody::Served {
                node: NodeId::from_index(7),
            },
            ResponseBody::Redirect { owner: MdsId(31) },
            ResponseBody::NotFound,
        ]
        .into_iter()
        .map(|body| Response {
            id: RequestId(42),
            from: MdsId(5),
            body,
            hops: 2,
        })
        .collect()
    }

    #[test]
    fn response_truncated_frames_are_rejected() {
        for resp in sample_responses() {
            let full = resp.encode();
            for cut in 0..full.len() {
                let mut partial = full.slice(..cut);
                assert_eq!(
                    Response::decode(&mut partial),
                    None,
                    "{resp:?} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn response_garbage_is_rejected() {
        // Unknown body tag.
        let mut raw = BytesMut::from(&sample_responses()[0].encode()[..]);
        raw[4 + 10] = 99; // the body tag byte
        assert_eq!(Response::decode(&mut raw.freeze()), None);

        // Length prefix disagreeing with the fixed frame size.
        let mut raw = BytesMut::from(&sample_responses()[0].encode()[..]);
        raw[3] = 20; // the pre-fix (short) length
        assert_eq!(Response::decode(&mut raw.freeze()), None);
    }

    #[test]
    fn flipped_bytes_never_panic_the_decoders() {
        // Any single corrupted byte must decode to None or to some
        // well-formed value that consumes the whole frame — never
        // panic. (A None may leave the cursor mid-frame; callers treat
        // a decode failure as fatal for the stream.)
        let req = Request {
            id: RequestId(77),
            kind: OpKind::Update,
            target: NodeId::from_index(12345),
            hops: 2,
            trace: Some((0xAB, 0xCD)),
        };
        let req_frame = req.encode();
        for i in 0..req_frame.len() {
            let mut raw = BytesMut::from(&req_frame[..]);
            raw[i] ^= 0xFF;
            let mut frame = raw.freeze();
            if Request::decode(&mut frame).is_some() {
                assert!(frame.is_empty(), "byte {i}: partial consume");
            }
        }
        for resp in sample_responses() {
            let resp_frame = resp.encode();
            for i in 0..resp_frame.len() {
                let mut raw = BytesMut::from(&resp_frame[..]);
                raw[i] ^= 0xFF;
                let mut frame = raw.freeze();
                if Response::decode(&mut frame).is_some() {
                    assert!(frame.is_empty(), "byte {i}: partial consume");
                }
            }
        }
    }

    #[test]
    fn response_back_to_back_frames_decode_in_order() {
        // The length prefix must cover the whole body, or the second
        // frame starts one byte early (the pre-fix bug this guards).
        let mut stream = BytesMut::new();
        for resp in sample_responses() {
            stream.extend_from_slice(&resp.encode());
        }
        let mut stream = stream.freeze();
        for resp in sample_responses() {
            assert_eq!(Response::decode(&mut stream), Some(resp));
        }
        assert!(stream.is_empty());
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let req = Request {
            id: RequestId(1),
            kind: OpKind::Read,
            target: NodeId::from_index(1),
            hops: 0,
            trace: Some((9, 17)),
        };
        let full = req.encode();
        for cut in 0..full.len() {
            let mut partial = full.slice(..cut);
            assert_eq!(Request::decode(&mut partial), None, "cut at {cut}");
        }
    }

    #[test]
    fn garbage_kind_is_rejected() {
        let req = Request {
            id: RequestId(1),
            kind: OpKind::Read,
            target: NodeId::from_index(1),
            hops: 0,
            trace: None,
        };
        let mut raw = BytesMut::from(&req.encode()[..]);
        raw[4 + 8] = 99; // corrupt the kind byte
        let mut frame = raw.freeze();
        assert_eq!(Request::decode(&mut frame), None);
    }

    fn sample_peer_msgs() -> Vec<PeerMsg> {
        vec![
            PeerMsg::RequestVote {
                term: 3,
                candidate: 1,
                last_log_index: 17,
                last_log_term: 2,
            },
            PeerMsg::VoteReply {
                term: 3,
                voter: 2,
                granted: true,
            },
            PeerMsg::Append {
                term: 4,
                leader: 0,
                prev_index: 9,
                prev_term: 3,
                commit: 8,
                entries: vec![
                    Entry {
                        term: 4,
                        index: 10,
                        cmd: Command::Noop,
                    },
                    Entry {
                        term: 4,
                        index: 11,
                        cmd: Command::LeaseAcquire {
                            node: u64::MAX,
                            holder: 7,
                            now_ms: 12345,
                        },
                    },
                    Entry {
                        term: 4,
                        index: 12,
                        cmd: Command::Migrate {
                            subtree: 99,
                            from: 1,
                            to: 2,
                        },
                    },
                ],
            },
            PeerMsg::Append {
                term: 5,
                leader: 2,
                prev_index: 0,
                prev_term: 0,
                commit: 0,
                entries: Vec::new(),
            },
            PeerMsg::AppendReply {
                term: 4,
                follower: 1,
                success: false,
                match_index: 6,
            },
        ]
    }

    #[test]
    fn peer_msg_roundtrip() {
        for msg in sample_peer_msgs() {
            let mut framed = msg.encode();
            assert_eq!(PeerMsg::decode(&mut framed), Some(msg.clone()), "{msg:?}");
            assert!(framed.is_empty(), "frame fully consumed: {msg:?}");
        }
    }

    #[test]
    fn peer_msg_truncated_frames_are_rejected() {
        for msg in sample_peer_msgs() {
            let full = msg.encode();
            for cut in 0..full.len() {
                let mut partial = full.slice(..cut);
                assert_eq!(PeerMsg::decode(&mut partial), None, "{msg:?} cut at {cut}");
            }
        }
    }

    #[test]
    fn peer_msg_garbage_is_rejected() {
        // Unknown frame tag.
        let mut raw = BytesMut::from(
            &PeerMsg::VoteReply {
                term: 1,
                voter: 0,
                granted: false,
            }
            .encode()[..],
        );
        raw[4] = 77;
        assert_eq!(PeerMsg::decode(&mut raw.freeze()), None);

        // Non-boolean granted byte.
        let mut raw = BytesMut::from(
            &PeerMsg::VoteReply {
                term: 1,
                voter: 0,
                granted: true,
            }
            .encode()[..],
        );
        *raw.last_mut().unwrap() = 2;
        assert_eq!(PeerMsg::decode(&mut raw.freeze()), None);

        // Entry with an unknown command opcode inside an Append.
        let msg = PeerMsg::Append {
            term: 1,
            leader: 0,
            prev_index: 0,
            prev_term: 0,
            commit: 0,
            entries: vec![Entry {
                term: 1,
                index: 1,
                cmd: Command::Noop,
            }],
        };
        let mut raw = BytesMut::from(&msg.encode()[..]);
        raw[4 + 37 + 16] = 200; // the entry's opcode byte
        assert_eq!(PeerMsg::decode(&mut raw.freeze()), None);

        // Length prefix that disagrees with the entry count.
        let mut raw = BytesMut::from(&msg.encode()[..]);
        raw[4 + 36] = 2; // claim two entries, carry one
        assert_eq!(PeerMsg::decode(&mut raw.freeze()), None);
    }

    #[test]
    fn peer_msg_back_to_back_frames_decode_in_order() {
        let msgs = sample_peer_msgs();
        let mut stream = BytesMut::new();
        for m in &msgs {
            stream.extend_from_slice(&m.encode());
        }
        let mut stream = stream.freeze();
        for m in &msgs {
            assert_eq!(PeerMsg::decode(&mut stream), Some(m.clone()));
        }
        assert!(stream.is_empty());
    }

    #[test]
    fn back_to_back_frames_decode_in_order() {
        let a = Request {
            id: RequestId(1),
            kind: OpKind::Read,
            target: NodeId::from_index(10),
            hops: 0,
            trace: Some((1, 2)),
        };
        let b = Request {
            id: RequestId(2),
            kind: OpKind::Update,
            target: NodeId::from_index(20),
            hops: 1,
            trace: None,
        };
        let mut stream = BytesMut::new();
        stream.extend_from_slice(&a.encode());
        stream.extend_from_slice(&b.encode());
        let mut stream = stream.freeze();
        assert_eq!(Request::decode(&mut stream), Some(a));
        assert_eq!(Request::decode(&mut stream), Some(b));
        assert!(stream.is_empty());
    }
}
