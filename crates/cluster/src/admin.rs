//! Live admin plane: a second listener on a running `d2tree serve`
//! daemon answering operator HTTP GETs from the daemon's own telemetry.
//!
//! Every observability surface before this PR was post-mortem — the
//! registry export, span digests, and the flight recorder were only
//! written out after a run ended. The [`AdminServer`] makes them live:
//!
//! * `GET /metrics` — Prometheus text from a registry snapshot taken at
//!   scrape time (race-safe against concurrently recording serve
//!   threads; see `Histogram::snapshot`).
//! * `GET /metrics.json` — the same snapshot as a JSON document, the
//!   feed `d2tree top` polls.
//! * `GET /health` — [`HealthRules`] evaluated over the flight
//!   recorder's current ring contents: `200` when no rule is violated,
//!   `503` otherwise, either way with a JSON body carrying the verdict,
//!   the violations, and the latest tick.
//! * `GET /trace?n=K` — the last `K` sealed span segments rendered as a
//!   Chrome `chrome://tracing` JSON document, *without* consuming them
//!   (the shutdown export still sees everything).
//! * `GET /slow` — the daemon's bounded slow-request log, slowest
//!   first, with trace ids for joining against `/trace`.
//!
//! The protocol is a deliberately minimal HTTP/1.0 subset: one GET per
//! connection, `Connection: close`, no keep-alive, no request bodies.
//! That keeps the parser small enough to be obviously robust — the
//! request head is reassembled byte-at-a-time-safe exactly like the
//! frame codec, bounded in size, and answered with `400`/`404`/`405`/
//! `408`/`414` instead of hanging or crashing on garbage. Real browsers
//! and `curl` speak it happily.
//!
//! The listener reuses [`AcceptLoop`] — the same accept-thread /
//! stop-flag / self-connect-wake machinery as the frame-codec
//! [`NetServer`](crate::net::NetServer) — so shutdown semantics are
//! identical: killing the daemon mid-scrape drops the scrape connection
//! within one poll interval and nothing else.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use d2tree_telemetry::trace::chrome_trace_json;
use d2tree_telemetry::{
    export, names, Counter, FlightRecorder, HealthRules, HistogramSnapshot, MetricKey,
};
use parking_lot::Mutex;

use crate::net::{AcceptLoop, NetMds, SlowEntry};

/// Tuning of an [`AdminServer`].
#[derive(Debug, Clone)]
pub struct AdminConfig {
    /// Read timeout on scrape sockets, which doubles as the stop-flag
    /// poll granularity (mirrors `NetServerConfig::poll_interval`).
    pub poll_interval: Duration,
    /// How often the sampling ticker feeds the flight recorder.
    pub tick_interval: Duration,
    /// Flight-recorder ring capacity, in ticks.
    pub recorder_capacity: usize,
    /// Rules `/health` evaluates over the ring.
    pub rules: HealthRules,
    /// Cap on the request head (request line + headers) in bytes.
    pub max_head: usize,
    /// Cap on the request path in bytes (`414` beyond it).
    pub max_path: usize,
    /// How long a connection may dribble its request head before the
    /// server answers `408` and closes.
    pub head_deadline: Duration,
    /// Default and maximum span count for `/trace`.
    pub trace_default_spans: usize,
    /// Hard cap on `/trace?n=K` (a scrape must not decode unboundedly).
    pub trace_max_spans: usize,
}

impl Default for AdminConfig {
    fn default() -> Self {
        AdminConfig {
            poll_interval: Duration::from_millis(25),
            tick_interval: Duration::from_millis(250),
            recorder_capacity: 256,
            rules: HealthRules::default(),
            max_head: 8 * 1024,
            max_path: 1024,
            head_deadline: Duration::from_secs(2),
            trace_default_spans: 256,
            trace_max_spans: 4096,
        }
    }
}

/// Totals an [`AdminServer`] accumulated, reported by
/// [`AdminServer::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdminStats {
    /// Successfully answered scrapes (`200` and `503` both count — a
    /// `503` health verdict is a scrape that worked).
    pub scrapes: u64,
    /// Requests answered with a `4xx` protocol error.
    pub errors: u64,
}

/// Shared state behind every scrape connection and the sampling ticker.
struct AdminState {
    mds: Arc<NetMds>,
    recorder: Mutex<FlightRecorder>,
    rules: HealthRules,
    scrapes: Arc<Counter>,
    errors: Arc<Counter>,
    config: AdminConfig,
}

/// The admin-plane listener plus its sampling ticker.
///
/// Binding starts both; [`shutdown`](Self::shutdown) (or drop) stops
/// the ticker and drains every scrape connection through the shared
/// [`AcceptLoop`] stop flag.
pub struct AdminServer {
    acceptor: AcceptLoop,
    ticker: Option<JoinHandle<()>>,
    scrapes: Arc<Counter>,
    errors: Arc<Counter>,
}

impl std::fmt::Debug for AdminServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdminServer")
            .field("addr", &self.acceptor.local_addr())
            .finish_non_exhaustive()
    }
}

impl AdminServer {
    /// Binds the admin listener at `addr` (port 0 for ephemeral) over
    /// the daemon `mds`, and starts the flight-recorder ticker.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (address in use, permission denied).
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        mds: Arc<NetMds>,
        config: AdminConfig,
    ) -> io::Result<AdminServer> {
        let registry = Arc::clone(mds.registry());
        let scrapes = registry.counter(MetricKey::global(names::ADMIN_SCRAPES_TOTAL));
        let errors = registry.counter(MetricKey::global(names::ADMIN_ERRORS_TOTAL));
        let state = Arc::new(AdminState {
            mds: Arc::clone(&mds),
            recorder: Mutex::new(FlightRecorder::new(config.recorder_capacity)),
            rules: config.rules.clone(),
            scrapes: Arc::clone(&scrapes),
            errors: Arc::clone(&errors),
            config: config.clone(),
        });
        let acceptor = {
            let state = Arc::clone(&state);
            AcceptLoop::spawn(addr, config.poll_interval, move |stream, stop| {
                handle_conn(stream, stop, &state);
            })?
        };
        let ticker = {
            let stop = acceptor.stop_flag();
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                // First sample immediately: /health has data as soon as
                // the daemon is reachable, not one tick later.
                loop {
                    {
                        let sample = state.mds.tick_sample();
                        let registry = Arc::clone(state.mds.registry());
                        state.recorder.lock().sample(sample, Some(&registry));
                    }
                    let mut slept = Duration::ZERO;
                    while slept < state.config.tick_interval {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        let nap = state
                            .config
                            .poll_interval
                            .min(state.config.tick_interval - slept);
                        std::thread::sleep(nap);
                        slept += nap;
                    }
                }
            })
        };
        Ok(AdminServer {
            acceptor,
            ticker: Some(ticker),
            scrapes,
            errors,
        })
    }

    /// The address the admin listener actually bound.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.acceptor.local_addr()
    }

    fn stop_and_join(&mut self) {
        self.acceptor.stop_and_join();
        if let Some(ticker) = self.ticker.take() {
            ticker.join().expect("admin ticker panicked");
        }
    }

    /// Stops the listener and ticker, drains in-flight scrapes, and
    /// reports totals.
    ///
    /// # Panics
    ///
    /// Panics if the accept loop, a scrape handler, or the ticker
    /// panicked.
    #[must_use]
    pub fn shutdown(mut self) -> AdminStats {
        self.stop_and_join();
        AdminStats {
            scrapes: self.scrapes.get(),
            errors: self.errors.get(),
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// How reading one request head ended.
enum Head {
    /// A complete head (blank line seen, or EOF after at least a line).
    Complete,
    /// The head outgrew [`AdminConfig::max_head`].
    TooBig,
    /// The peer dribbled past [`AdminConfig::head_deadline`].
    Timeout,
    /// Shutdown or a dead socket: drop without answering.
    Drop,
}

/// True once `head` holds a complete request head: an empty line ends
/// the header block (tolerating bare-`\n` clients).
fn head_complete(head: &[u8]) -> bool {
    head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n")
}

/// Reads one request head from `stream` into `head`, byte-dribble-safe
/// and bounded in both size and time, polling `stop` every read
/// timeout exactly like the frame-codec connection loop.
fn read_head(
    stream: &mut TcpStream,
    stop: &AtomicBool,
    head: &mut Vec<u8>,
    cfg: &AdminConfig,
) -> Head {
    let deadline = Instant::now() + cfg.head_deadline;
    let mut buf = [0u8; 1024];
    loop {
        if head_complete(head) {
            return Head::Complete;
        }
        if head.len() > cfg.max_head {
            return Head::TooBig;
        }
        if stop.load(Ordering::SeqCst) {
            return Head::Drop;
        }
        if Instant::now() >= deadline {
            return Head::Timeout;
        }
        match stream.read(&mut buf) {
            // EOF: a hand-rolled client may close after just the
            // request line; parse whatever arrived (or drop a probe
            // that sent nothing at all).
            Ok(0) => {
                return if head.is_empty() {
                    Head::Drop
                } else {
                    Head::Complete
                };
            }
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Head::Drop,
        }
    }
}

/// One scrape connection: read the head, dispatch, answer, close.
fn handle_conn(mut stream: TcpStream, stop: &AtomicBool, state: &AdminState) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(state.config.poll_interval));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut head = Vec::new();
    let (status, content_type, body) = match read_head(&mut stream, stop, &mut head, &state.config)
    {
        Head::Complete => dispatch(&head, state),
        Head::TooBig => (414, "text/plain", "request head too large\n".to_owned()),
        Head::Timeout => (408, "text/plain", "request head timed out\n".to_owned()),
        Head::Drop => return,
    };
    // A 503 health verdict is still a successful scrape; only protocol
    // errors land in the error counter.
    if status == 200 || status == 503 {
        state.scrapes.inc();
    } else {
        state.errors.inc();
    }
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        414 => "URI Too Long",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Parses the request line out of a complete head and routes it.
fn dispatch(head: &[u8], state: &AdminState) -> (u16, &'static str, String) {
    let Ok(text) = std::str::from_utf8(head) else {
        return (400, "text/plain", "request line is not UTF-8\n".to_owned());
    };
    let line = text.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => return (400, "text/plain", "malformed request line\n".to_owned()),
    };
    if target.len() > state.config.max_path {
        return (414, "text/plain", "request path too long\n".to_owned());
    }
    if !target.starts_with('/') {
        return (
            400,
            "text/plain",
            "request path must be absolute\n".to_owned(),
        );
    }
    if method != "GET" {
        return (405, "text/plain", "only GET is served\n".to_owned());
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    match path {
        "/metrics" => {
            let snap = state.mds.registry().snapshot();
            (
                200,
                "text/plain; version=0.0.4",
                export::prometheus_text(&snap),
            )
        }
        "/metrics.json" => {
            let snap = state.mds.registry().snapshot();
            (200, "application/json", export::json(&snap))
        }
        "/health" => health_body(state),
        "/trace" => {
            let n = query
                .and_then(|q| {
                    q.split('&')
                        .find_map(|kv| kv.strip_prefix("n=").and_then(|v| v.parse::<usize>().ok()))
                })
                .unwrap_or(state.config.trace_default_spans)
                .min(state.config.trace_max_spans);
            let spans = state
                .mds
                .tracer()
                .map(|tr| tr.sink().peek_recent(n))
                .unwrap_or_default();
            (200, "application/json", chrome_trace_json(&spans))
        }
        "/slow" => (
            200,
            "application/json",
            slow_body(&state.mds.slow_requests()),
        ),
        _ => (404, "text/plain", "unknown path\n".to_owned()),
    }
}

/// Evaluates the health rules over the recorder ring: `200` when clean,
/// `503` when any post-warm-up tick violates a rule.
fn health_body(state: &AdminState) -> (u16, &'static str, String) {
    let recorder = state.recorder.lock();
    let violations = state.rules.check(recorder.ticks());
    let latest = recorder
        .to_jsonl()
        .lines()
        .last()
        .map_or_else(|| "null".to_owned(), str::to_owned);
    let mut body = String::from("{\"status\":\"");
    body.push_str(if violations.is_empty() {
        "ok"
    } else {
        "unhealthy"
    });
    body.push_str(&format!(
        "\",\"ticks\":{},\"violations\":[",
        recorder.total_recorded()
    ));
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"tick\":{},\"rule\":\"{}\",\"value\":{},\"limit\":{}}}",
            v.tick,
            v.rule,
            finite_or_null(v.value),
            finite_or_null(v.limit),
        ));
    }
    body.push_str("],\"latest\":");
    body.push_str(&latest);
    body.push('}');
    let status = if violations.is_empty() { 200 } else { 503 };
    (status, "application/json", body)
}

fn finite_or_null(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Renders the slow-request log as a JSON array, slowest first.
fn slow_body(entries: &[SlowEntry]) -> String {
    let mut out = String::from("[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let trace = e.trace.map_or_else(|| "null".to_owned(), |t| t.to_string());
        out.push_str(&format!(
            "{{\"dur_us\":{},\"t_us\":{},\"kind\":\"{:?}\",\"target\":{},\
             \"outcome\":{},\"trace\":{trace}}}",
            e.dur_us, e.t_us, e.kind, e.target, e.outcome
        ));
    }
    out.push(']');
    out
}

/// Issues one admin-plane GET and returns `(status, body)`.
///
/// A convenience for `d2tree top`, the load generator's mid-run
/// scraper, tests, and CI — it speaks exactly the HTTP/1.0 subset the
/// server serves: one request, read to EOF, connection closed.
///
/// # Errors
///
/// Propagates connect/read/write failures; a response without a
/// parsable status line reports [`io::ErrorKind::InvalidData`].
pub fn admin_get(addr: &str, path: &str, timeout: Duration) -> io::Result<(u16, String)> {
    let sockaddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = text
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unparsable status line"))?;
    let body = match text.find("\r\n\r\n") {
        Some(i) => text[i + 4..].to_owned(),
        None => String::new(),
    };
    Ok((status, body))
}

/// A parsed `/metrics.json` document — the subset `d2tree top` and the
/// load generator's scraper need, extracted by a hand-rolled scanner
/// over the exporter's (stable, machine-written) output format. Each
/// entry is `(name, mds_lane, value)`.
#[derive(Debug, Clone, Default)]
pub struct MetricsDoc {
    /// Registry uptime at scrape time, microseconds.
    pub uptime_us: u64,
    /// Counter values.
    pub counters: Vec<(String, Option<u16>, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, Option<u16>, u64)>,
    /// Histogram summaries.
    pub histograms: Vec<(String, Option<u16>, HistogramSnapshot)>,
}

impl MetricsDoc {
    /// Sum of a counter across every lane (global + per-MDS).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _, _)| n == name)
            .map(|&(_, _, v)| v)
            .sum()
    }

    /// Sum of a gauge across every lane.
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .filter(|(n, _, _)| n == name)
            .map(|&(_, _, v)| v)
            .sum()
    }

    /// A histogram summary for `name`: counts and sums are added across
    /// lanes; quantiles/min/max come from the busiest lane (quantiles
    /// cannot be merged exactly — for a single daemon there is only one
    /// lane anyway).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        let lanes: Vec<&HistogramSnapshot> = self
            .histograms
            .iter()
            .filter(|(n, _, _)| n == name)
            .map(|(_, _, h)| h)
            .collect();
        let busiest = lanes.iter().max_by_key(|h| h.count)?;
        let mut merged = **busiest;
        merged.count = lanes.iter().map(|h| h.count).sum();
        merged.sum = lanes.iter().map(|h| h.sum).sum();
        Some(merged)
    }

    /// Sum of every histogram lane count whose name passes `pred` —
    /// e.g. total server-observed requests across the op-kind ×
    /// outcome matrix.
    #[must_use]
    pub fn histogram_count_where(&self, pred: impl Fn(&str) -> bool) -> u64 {
        self.histograms
            .iter()
            .filter(|(n, _, _)| pred(n))
            .map(|(_, _, h)| h.count)
            .sum()
    }
}

/// Extracts the body of `"key":[ ... ]` from `doc`, bracket-balanced.
fn array_section<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":[");
    let start = doc.find(&pat)? + pat.len();
    let mut depth = 1usize;
    for (i, b) in doc[start..].bytes().enumerate() {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&doc[start..start + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits a flat JSON array body into its `{...}` objects.
fn objects(body: &str) -> impl Iterator<Item = &str> {
    body.split("},{")
        .map(|o| o.trim_matches(|c| c == '{' || c == '}'))
        .filter(|o| !o.is_empty())
}

/// The raw text of `"key":<value>` inside one flat object.
fn field_raw<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(&rest[..end])
}

fn field_u64(obj: &str, key: &str) -> Option<u64> {
    field_raw(obj, key)?.trim().parse().ok()
}

fn field_key(obj: &str) -> Option<(String, Option<u16>)> {
    let name = field_raw(obj, "name")?.trim_matches('"').to_owned();
    let mds = match field_raw(obj, "mds")? {
        "null" => None,
        m => Some(m.parse().ok()?),
    };
    Some((name, mds))
}

/// Parses the exporter's `/metrics.json` document. Returns `None` on
/// anything that does not look like the exporter's output — the caller
/// (a polling `top`) should skip the sample, not crash.
#[must_use]
pub fn parse_metrics_json(doc: &str) -> Option<MetricsDoc> {
    let uptime_us = field_u64(doc, "uptime_us")?;
    let mut out = MetricsDoc {
        uptime_us,
        ..MetricsDoc::default()
    };
    for obj in objects(array_section(doc, "counters")?) {
        let (name, mds) = field_key(obj)?;
        out.counters.push((name, mds, field_u64(obj, "value")?));
    }
    for obj in objects(array_section(doc, "gauges")?) {
        let (name, mds) = field_key(obj)?;
        out.gauges.push((name, mds, field_u64(obj, "value")?));
    }
    for obj in objects(array_section(doc, "histograms")?) {
        let (name, mds) = field_key(obj)?;
        let h = HistogramSnapshot {
            count: field_u64(obj, "count")?,
            sum: field_u64(obj, "sum")?,
            min: field_u64(obj, "min")?,
            max: field_u64(obj, "max")?,
            p50: field_u64(obj, "p50")?,
            p90: field_u64(obj, "p90")?,
            p99: field_u64(obj, "p99")?,
            p999: field_u64(obj, "p999")?,
        };
        out.histograms.push((name, mds, h));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_telemetry::Registry;

    #[test]
    fn parse_round_trips_the_exporter() {
        let registry = Registry::new();
        names::register_all(&registry);
        registry
            .counter(MetricKey::mds(names::SERVER_SERVED_TOTAL, 0))
            .add(7);
        registry
            .counter(MetricKey::mds(names::SERVER_SERVED_TOTAL, 1))
            .add(5);
        registry
            .gauge(MetricKey::global(names::NET_ACTIVE_CONNS))
            .add(3);
        let h = registry.histogram(MetricKey::mds(names::SRV_LATENCY_US_READ_OK, 0));
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let doc = export::json(&registry.snapshot());
        let parsed = parse_metrics_json(&doc).expect("exporter output parses");
        assert_eq!(parsed.counter(names::SERVER_SERVED_TOTAL), 12);
        assert_eq!(parsed.gauge(names::NET_ACTIVE_CONNS), 3);
        let snap = parsed
            .histogram(names::SRV_LATENCY_US_READ_OK)
            .expect("histogram present");
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 60);
        assert_eq!(snap.min, 10);
        assert!(parsed.uptime_us > 0 || parsed.uptime_us == 0);
        assert_eq!(
            parsed.histogram_count_where(|n| n.starts_with("srv_latency_us_")),
            3
        );
    }

    #[test]
    fn parse_rejects_garbage_gracefully() {
        assert!(parse_metrics_json("").is_none());
        assert!(parse_metrics_json("not json at all").is_none());
        assert!(parse_metrics_json("{\"uptime_us\":5}").is_none());
    }

    #[test]
    fn head_completion_tolerates_bare_newlines() {
        assert!(head_complete(b"GET / HTTP/1.0\r\n\r\n"));
        assert!(head_complete(b"GET / HTTP/1.0\n\n"));
        assert!(!head_complete(b"GET / HTTP/1.0\r\n"));
        assert!(!head_complete(b"GET"));
    }
}
