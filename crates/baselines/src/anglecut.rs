//! AngleCut: locality-preserving projection onto Chord-like rings.

use d2tree_core::Partitioner;
use d2tree_metrics::{Assignment, ClusterSpec, MdsId, Migration, Placement};
use d2tree_namespace::{NamespaceTree, Popularity};

use crate::keys::{locality_keys, range_owner, weighted_boundaries};

/// AngleCut (Liu et al., DASFAA'17), reimplemented from its published
/// description: the namespace tree is projected onto multiple concentric
/// Chord-like rings — one ring per depth band — where a node's *angle* is
/// a locality-preserving subdivision of its parent's angular range. Each
/// ring is cut into per-MDS sectors; sector boundaries are tuned per ring
/// from popularity histograms, which gives hashing-grade balance, while
/// the angular inheritance keeps parent/child pairs in the same sector
/// *most* of the time — but every ring boundary a path crosses costs a
/// jump, so locality degrades as the cluster (and boundary count) grows.
#[derive(Debug)]
pub struct AngleCut {
    seed: u64,
    rings: usize,
    placement: Option<Placement>,
    angles: Vec<f64>,
    /// Per-ring sector boundaries, indexed `[ring][mds]`.
    boundaries: Vec<Vec<f64>>,
}

impl AngleCut {
    /// Creates the scheme with the default of 4 depth-band rings.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        AngleCut {
            seed,
            rings: 4,
            placement: None,
            angles: Vec::new(),
            boundaries: Vec::new(),
        }
    }

    /// Overrides the number of rings (depth bands).
    ///
    /// # Panics
    ///
    /// Panics if `rings == 0`.
    #[must_use]
    pub fn with_rings(mut self, rings: usize) -> Self {
        assert!(rings > 0, "need at least one ring");
        self.rings = rings;
        self
    }

    /// The ring (depth band) a node of the given depth projects to.
    fn ring_of_depth(&self, depth: usize, max_depth: usize) -> usize {
        if max_depth == 0 {
            return 0;
        }
        (depth * self.rings / (max_depth + 1)).min(self.rings - 1)
    }

    fn retune(&mut self, tree: &NamespaceTree, pop: &Popularity, cluster: &ClusterSpec) {
        let max_depth = tree.max_depth();
        let shares: Vec<f64> = cluster.ids().map(|k| cluster.capacity_share(k)).collect();
        let jitter = (self.seed % 89) as f64 * 1e-15;
        let mut per_ring: Vec<Vec<(f64, f64)>> = vec![Vec::new(); self.rings];
        let mut depth = vec![0usize; tree.arena_size()];
        for (id, node) in tree.nodes() {
            if let Some(p) = node.parent() {
                depth[id.index()] = depth[p.index()] + 1;
            }
            let ring = self.ring_of_depth(depth[id.index()], max_depth);
            per_ring[ring].push((self.angles[id.index()] + jitter, pop.individual(id)));
        }
        self.boundaries = per_ring
            .iter_mut()
            .map(|points| {
                if points.is_empty() {
                    // An unused ring: uniform sectors.
                    let m = shares.len();
                    (1..=m).map(|k| k as f64 / m as f64).collect()
                } else {
                    weighted_boundaries(points, &shares)
                }
            })
            .collect();
    }

    fn rebuild_placement(&self, tree: &NamespaceTree, m: usize) -> Placement {
        let max_depth = tree.max_depth();
        let mut placement = Placement::new(tree, m);
        let mut depth = vec![0usize; tree.arena_size()];
        for (id, node) in tree.nodes() {
            if let Some(p) = node.parent() {
                depth[id.index()] = depth[p.index()] + 1;
            }
            let ring = self.ring_of_depth(depth[id.index()], max_depth);
            let owner = range_owner(&self.boundaries[ring], self.angles[id.index()]);
            placement.set(id, Assignment::Single(MdsId(owner as u16)));
        }
        placement
    }
}

impl Partitioner for AngleCut {
    fn name(&self) -> &'static str {
        "AngleCut"
    }

    fn build(&mut self, tree: &NamespaceTree, pop: &Popularity, cluster: &ClusterSpec) {
        self.angles = locality_keys(tree);
        self.retune(tree, pop, cluster);
        self.placement = Some(self.rebuild_placement(tree, cluster.len()));
    }

    fn placement(&self) -> &Placement {
        self.placement.as_ref().expect("AngleCut used before build")
    }

    fn rebalance(
        &mut self,
        tree: &NamespaceTree,
        pop: &Popularity,
        cluster: &ClusterSpec,
    ) -> Vec<Migration> {
        let old = self.placement.take().expect("AngleCut used before build");
        self.retune(tree, pop, cluster);
        let fresh = self.rebuild_placement(tree, cluster.len());
        let migrations = tree
            .nodes()
            .filter_map(|(id, _)| {
                let from = old.assignment(id).owner()?;
                let to = fresh.assignment(id).owner()?;
                (from != to).then_some(Migration { node: id, from, to })
            })
            .collect();
        self.placement = Some(fresh);
        migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_metrics::balance;
    use d2tree_workload::{TraceProfile, WorkloadBuilder};

    fn setup(m: usize) -> (d2tree_workload::Workload, Popularity, AngleCut, ClusterSpec) {
        let w = WorkloadBuilder::new(TraceProfile::ra().with_nodes(2_000).with_operations(40_000))
            .seed(9)
            .build();
        let pop = w.popularity();
        let cluster = ClusterSpec::homogeneous(m, 100.0);
        let mut s = AngleCut::new(5);
        s.build(&w.tree, &pop, &cluster);
        (w, pop, s, cluster)
    }

    #[test]
    fn placement_complete() {
        let (w, _pop, s, _) = setup(5);
        assert!(s.placement().is_complete(&w.tree));
    }

    #[test]
    fn per_ring_tuning_balances_loads() {
        let (w, pop, s, cluster) = setup(8);
        let loads = s.loads(&w.tree, &pop);
        let total: f64 = loads.iter().sum();
        for l in &loads {
            assert!(
                *l <= 2.5 * total / 8.0 + 1e-9,
                "load {l} vs ideal {}",
                total / 8.0
            );
        }
        assert!(balance(&loads, &cluster).is_finite());
    }

    #[test]
    fn angular_inheritance_keeps_many_edges_local() {
        let (w, _pop, s, _) = setup(4);
        // Most parent/child pairs in the same ring share an owner thanks to
        // nested angular intervals.
        let mut same = 0usize;
        let mut total = 0usize;
        for (id, node) in w.tree.nodes() {
            if let Some(p) = node.parent() {
                total += 1;
                if s.placement().assignment(id) == s.placement().assignment(p) {
                    same += 1;
                }
            }
        }
        assert!(
            same as f64 / total as f64 > 0.5,
            "too few co-located edges: {same}/{total}"
        );
    }

    #[test]
    fn rebalance_tracks_drift() {
        let (w, mut pop, mut s, cluster) = setup(4);
        let victim = w.tree.nodes().map(|(id, _)| id).nth(321).unwrap();
        pop.record(victim, 300_000.0);
        pop.rollup(&w.tree);
        let before = balance(&s.loads(&w.tree, &pop), &cluster);
        let _ = s.rebalance(&w.tree, &pop, &cluster);
        let after = balance(&s.loads(&w.tree, &pop), &cluster);
        assert!(
            after >= before * 0.5,
            "retuning should roughly keep or improve balance"
        );
    }

    #[test]
    fn ring_assignment_spans_depth_bands() {
        let s = AngleCut::new(0).with_rings(3);
        assert_eq!(s.ring_of_depth(0, 9), 0);
        assert_eq!(s.ring_of_depth(9, 9), 2);
        assert_eq!(s.ring_of_depth(5, 9), 1);
        assert_eq!(s.ring_of_depth(0, 0), 0);
    }
}
