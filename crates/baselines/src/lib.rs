//! Comparison schemes from the D2-Tree paper's evaluation (Sec. VI):
//!
//! * [`StaticSubtree`] — static subtree partitioning: directories near the
//!   root are hashed to servers once, whole subtrees follow, nothing ever
//!   moves.
//! * [`DynamicSubtree`] — Ceph-style dynamic subtree partitioning: finer
//!   initial subtrees, overloaded servers migrate their hottest subtrees to
//!   the lightest server.
//! * [`HashMapping`] — CalvinFS/Giga+-style hashing: every node is placed
//!   independently by a pathname hash.
//! * [`DropScheme`] — DROP: locality-preserving hashing of the namespace
//!   onto a key ring, with histogram-based dynamic load balancing (HDLB)
//!   moving the range boundaries.
//! * [`AngleCut`] — AngleCut: locality-preserving projection onto
//!   per-depth Chord-like rings with per-ring sector boundaries.
//!
//! All of them implement [`Partitioner`], so every
//! experiment harness treats them and D2-Tree uniformly.
//!
//! DROP and AngleCut have no open-source implementations; both are
//! re-implemented here from their papers' algorithmic descriptions (see
//! `DESIGN.md` §4 for the substitution argument).
//!
//! [`Partitioner`]: d2tree_core::Partitioner

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod anglecut;
mod drop_scheme;
mod dynamic_subtree;
mod hash_mapping;
pub mod keys;
mod static_subtree;

pub use anglecut::AngleCut;
pub use drop_scheme::DropScheme;
pub use dynamic_subtree::DynamicSubtree;
pub use hash_mapping::HashMapping;
pub use static_subtree::StaticSubtree;

use d2tree_core::{D2TreeConfig, D2TreeScheme, Partitioner, SampleStrategy};

/// Builds the full scheme line-up of the paper's figures, D2-Tree first.
///
/// The D2-Tree instance uses `gl_proportion` for its global layer (the
/// paper uses 1%) and — like the paper's system — allocates local-layer
/// subtrees from a *sampled* popularity CDF rather than full information
/// (Sec. IV-B's random walk; Thm. 3/4 bound the resulting balance error).
#[must_use]
pub fn paper_lineup(gl_proportion: f64, seed: u64) -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(D2TreeScheme::new(
            D2TreeConfig::by_proportion(gl_proportion)
                .with_sampling(SampleStrategy::Uniform, 2_000)
                .with_seed(seed),
        )),
        Box::new(StaticSubtree::new(seed)),
        Box::new(DynamicSubtree::new(seed)),
        Box::new(DropScheme::new(seed)),
        Box::new(AngleCut::new(seed)),
    ]
}

/// Like [`paper_lineup`] but with plain hash mapping appended, for
/// experiments that also want the classic baseline.
#[must_use]
pub fn extended_lineup(gl_proportion: f64, seed: u64) -> Vec<Box<dyn Partitioner>> {
    let mut v = paper_lineup(gl_proportion, seed);
    v.push(Box::new(HashMapping::new(seed)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_metrics::ClusterSpec;
    use d2tree_workload::{TraceProfile, WorkloadBuilder};

    #[test]
    fn every_scheme_builds_a_complete_placement() {
        let w = WorkloadBuilder::new(TraceProfile::ra().with_nodes(1_200).with_operations(12_000))
            .seed(6)
            .build();
        let pop = w.popularity();
        let cluster = ClusterSpec::homogeneous(5, 100.0);
        for mut scheme in extended_lineup(0.01, 3) {
            scheme.build(&w.tree, &pop, &cluster);
            assert!(
                scheme.placement().is_complete(&w.tree),
                "{} left nodes unassigned",
                scheme.name()
            );
            let loads = scheme.loads(&w.tree, &pop);
            assert_eq!(loads.len(), 5);
            assert!(loads.iter().sum::<f64>() > 0.0);
        }
    }

    #[test]
    fn lineup_names_are_distinct() {
        let names: Vec<&str> = extended_lineup(0.01, 0).iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            names.len(),
            "duplicate scheme names: {names:?}"
        );
    }
}
