//! Dynamic subtree partitioning (Ceph-style).

use d2tree_core::Partitioner;
use d2tree_metrics::{Assignment, ClusterSpec, MdsId, Migration, Placement};
use d2tree_namespace::{NamespaceTree, NodeId, Popularity};

use crate::keys::stable_hash;

/// Dynamic subtree partitioning (Sec. II, as in Ceph \[8\] / Kosha \[16\]).
///
/// Initialisation follows the paper: like [`StaticSubtree`] but "the
/// subtrees need to be split into smaller subtrees with finer granularity"
/// — the migratable units root at `cut_depth` (default 3). When a server
/// becomes heavily loaded it migrates subdirectories to the least-loaded
/// server, one hot unit at a time, until it drops below the overload
/// threshold or runs out of units.
///
/// The paper's critique — migration granularity is whole directories, and
/// a handful of flow-control subtrees can dominate the load so migration
/// "cannot break the imbalance" — emerges naturally: a unit hotter than
/// the ideal load keeps some server overloaded no matter where it goes,
/// and thrashes back and forth (bounded here by `max_moves_per_round`).
///
/// [`StaticSubtree`]: crate::StaticSubtree
#[derive(Debug)]
pub struct DynamicSubtree {
    seed: u64,
    cut_depth: usize,
    overload_factor: f64,
    max_moves_per_round: usize,
    placement: Option<Placement>,
    units: Vec<NodeId>,
    owners: Vec<MdsId>,
}

impl DynamicSubtree {
    /// Creates the scheme with the default fine cut (depth 3) and a 5%
    /// overload threshold.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        DynamicSubtree {
            seed,
            cut_depth: 3,
            overload_factor: 1.05,
            max_moves_per_round: 64,
            placement: None,
            units: Vec::new(),
            owners: Vec::new(),
        }
    }

    /// Overrides the migratable-unit depth.
    ///
    /// # Panics
    ///
    /// Panics if `cut_depth == 0`.
    #[must_use]
    pub fn with_cut_depth(mut self, cut_depth: usize) -> Self {
        assert!(cut_depth > 0, "cut depth must be at least 1");
        self.cut_depth = cut_depth;
        self
    }

    /// Overrides the overload threshold multiplier.
    #[must_use]
    pub fn with_overload_factor(mut self, factor: f64) -> Self {
        self.overload_factor = factor;
        self
    }

    /// The migratable units (subtree roots) with their current owners.
    pub fn units(&self) -> impl Iterator<Item = (NodeId, MdsId)> + '_ {
        self.units.iter().copied().zip(self.owners.iter().copied())
    }

    fn reassign(&mut self, tree: &NamespaceTree, slot: usize, to: MdsId) {
        self.owners[slot] = to;
        let placement = self.placement.as_mut().expect("built");
        placement.assign_subtree(tree, self.units[slot], to);
    }
}

impl Partitioner for DynamicSubtree {
    fn name(&self) -> &'static str {
        "Dynamic Subtree"
    }

    fn build(&mut self, tree: &NamespaceTree, _pop: &Popularity, cluster: &ClusterSpec) {
        let m = cluster.len();
        let mut placement = Placement::new(tree, m);
        let mut units = Vec::new();
        let mut owners = Vec::new();
        // DFS: nodes shallower than the cut hash individually; a node at
        // the cut (or a leaf above it) roots a migratable unit.
        let mut stack: Vec<(NodeId, usize)> = vec![(tree.root(), 0)];
        while let Some((id, depth)) = stack.pop() {
            let node = tree.node(id).expect("live traversal");
            let is_unit_root =
                depth == self.cut_depth || (depth < self.cut_depth && node.child_count() == 0);
            if is_unit_root {
                let h = stable_hash(tree.path_of(id).to_string().as_bytes()) ^ self.seed;
                let owner = MdsId((h % m as u64) as u16);
                placement.assign_subtree(tree, id, owner);
                units.push(id);
                owners.push(owner);
                continue;
            }
            let h = stable_hash(tree.path_of(id).to_string().as_bytes()) ^ self.seed;
            placement.set(id, Assignment::Single(MdsId((h % m as u64) as u16)));
            for (_, c) in node.children() {
                stack.push((c, depth + 1));
            }
        }
        self.placement = Some(placement);
        self.units = units;
        self.owners = owners;
    }

    fn placement(&self) -> &Placement {
        self.placement
            .as_ref()
            .expect("DynamicSubtree used before build")
    }

    fn rebalance(
        &mut self,
        tree: &NamespaceTree,
        pop: &Popularity,
        cluster: &ClusterSpec,
    ) -> Vec<Migration> {
        // Full served-request loads (shallow nodes included), so the
        // migration decisions optimise the same objective Def. 5 measures;
        // only the units below the cut are migratable, though.
        let mut loads = self
            .placement
            .as_ref()
            .expect("DynamicSubtree used before build")
            .loads(tree, pop);
        let total: f64 = loads.iter().sum();
        if total <= 0.0 {
            return Vec::new();
        }
        let mu = cluster.ideal_load_factor(total);
        let mut migrations = Vec::new();

        for _ in 0..self.max_moves_per_round {
            // Most overloaded server relative to its ideal.
            let (busy, ratio) = loads
                .iter()
                .enumerate()
                .map(|(k, &l)| (k, l / (mu * cluster.capacity(MdsId(k as u16)))))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty cluster");
            if ratio <= self.overload_factor {
                break;
            }
            let (light, _) = loads
                .iter()
                .enumerate()
                .map(|(k, &l)| (k, l / (mu * cluster.capacity(MdsId(k as u16)))))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty cluster");
            if light == busy {
                break;
            }
            // Migrate the hottest unit that still narrows the busy/light
            // gap (moving more than half the gap would overshoot and
            // thrash); if every unit is too hot, move the smallest one —
            // the paper's "flow-control subtrees" case where migration
            // cannot break the imbalance.
            let gap = loads[busy] - loads[light];
            let mine = self
                .units
                .iter()
                .enumerate()
                .filter(|(i, _)| self.owners[*i].index() == busy);
            let slot = match mine
                .clone()
                .filter(|(_, u)| pop.total(**u) <= gap / 2.0)
                .max_by(|a, b| pop.total(*a.1).total_cmp(&pop.total(*b.1)))
                .or_else(|| {
                    mine.filter(|(_, u)| pop.total(**u) < gap)
                        .min_by(|a, b| pop.total(*a.1).total_cmp(&pop.total(*b.1)))
                }) {
                Some((slot, _)) => slot,
                None => break, // every unit is hotter than the gap: stuck
            };
            let weight = pop.total(self.units[slot]);
            let from = MdsId(busy as u16);
            let to = MdsId(light as u16);
            self.reassign(tree, slot, to);
            loads[busy] -= weight;
            loads[light] += weight;
            migrations.push(Migration {
                node: self.units[slot],
                from,
                to,
            });
        }
        migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_metrics::balance;
    use d2tree_workload::{TraceProfile, WorkloadBuilder};

    fn setup(
        m: usize,
    ) -> (
        d2tree_workload::Workload,
        Popularity,
        DynamicSubtree,
        ClusterSpec,
    ) {
        let w = WorkloadBuilder::new(
            TraceProfile::dtr()
                .with_nodes(2_000)
                .with_operations(40_000),
        )
        .seed(5)
        .build();
        let pop = w.popularity();
        let cluster = ClusterSpec::homogeneous(m, 100.0);
        let mut s = DynamicSubtree::new(11);
        s.build(&w.tree, &pop, &cluster);
        (w, pop, s, cluster)
    }

    #[test]
    fn units_cover_whole_tree() {
        let (w, _pop, s, _) = setup(4);
        assert!(s.placement().is_complete(&w.tree));
        let covered: usize = s.units().map(|(u, _)| w.tree.subtree_size(u)).sum();
        let shallow = w
            .tree
            .nodes()
            .filter(|(id, n)| {
                w.tree.depth(*id) < 3 && !(n.child_count() == 0 || s.units().any(|(u, _)| u == *id))
            })
            .count();
        assert_eq!(covered + shallow, w.tree.node_count());
    }

    #[test]
    fn rebalance_reduces_imbalance() {
        let (w, pop, mut s, cluster) = setup(4);
        let before = balance(&s.loads(&w.tree, &pop), &cluster);
        let migrations = s.rebalance(&w.tree, &pop, &cluster);
        let after = balance(&s.loads(&w.tree, &pop), &cluster);
        if migrations.is_empty() {
            assert!(
                before >= after * 0.99,
                "no migrations only if already balanced"
            );
        } else {
            assert!(
                after >= before,
                "balance should not regress: {before} -> {after}"
            );
        }
    }

    #[test]
    fn migrations_move_whole_units() {
        let (w, pop, mut s, cluster) = setup(8);
        let migrations = s.rebalance(&w.tree, &pop, &cluster);
        for m in &migrations {
            let owner = s.placement().assignment(m.node).owner().unwrap();
            for id in w.tree.descendants(m.node) {
                assert_eq!(s.placement().assignment(id).owner(), Some(owner));
            }
        }
    }

    #[test]
    fn repeated_rounds_converge_or_bound_thrash() {
        let (w, pop, mut s, cluster) = setup(4);
        let mut total_moves = 0;
        for _ in 0..10 {
            total_moves += s.rebalance(&w.tree, &pop, &cluster).len();
        }
        // The thrash bound: no unbounded migration storms.
        assert!(total_moves <= 10 * 64);
    }
}
