//! Shared key-space machinery for the hash-flavoured baselines.
//!
//! * [`fnv1a`] — a stable pathname hash (FNV-1a), so placements are
//!   reproducible across platforms and Rust releases (unlike
//!   `DefaultHasher`).
//! * [`locality_keys`] — locality-preserving interval keys: every node
//!   receives a point in `[0, 1)` such that a subtree occupies a
//!   contiguous interval. This is the projection both DROP and AngleCut
//!   build on.

use d2tree_namespace::{NamespaceTree, NodeId};

/// FNV-1a hash of a byte string — stable across platforms and releases.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Stable bucketing hash: FNV-1a followed by a splitmix64-style finaliser.
///
/// Raw FNV-1a must not be reduced `mod M`: its low bits never feel the high
/// bits (multiplication only carries upwards), so two paths that collide in
/// the low bits keep colliding for **every** common suffix appended to
/// them — a whole renamed subtree would appear to "not move". The
/// finaliser folds the high bits down before any modulo.
#[must_use]
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h = fnv1a(bytes);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// Assigns every live node a key in `[0, 1)` by recursive interval
/// subdivision: the root owns `[0, 1)`, each child receives a subinterval
/// proportional to its subtree size, and a node's key is the start of its
/// interval.
///
/// Properties the baselines rely on:
/// * a subtree's keys form a contiguous range (locality preservation);
/// * key order refines DFS order, so contiguous key ranges are unions of
///   subtrees;
/// * sibling intervals are size-proportional, so keys are roughly uniform
///   over nodes.
///
/// Returns a dense table indexed by [`NodeId::index`]; tombstoned slots
/// hold `f64::NAN`.
#[must_use]
pub fn locality_keys(tree: &NamespaceTree) -> Vec<f64> {
    let mut keys = vec![f64::NAN; tree.arena_size()];
    // DFS with explicit intervals.
    let mut stack: Vec<(NodeId, f64, f64)> = vec![(tree.root(), 0.0, 1.0)];
    while let Some((id, start, end)) = stack.pop() {
        keys[id.index()] = start;
        let node = match tree.node(id) {
            Some(n) => n,
            None => continue,
        };
        let kids: Vec<NodeId> = node.children().map(|(_, c)| c).collect();
        if kids.is_empty() {
            continue;
        }
        let sizes: Vec<f64> = kids.iter().map(|&k| tree.subtree_size(k) as f64).collect();
        let total: f64 = sizes.iter().sum();
        // The parent keeps an epsilon-slot at `start`; children share the
        // rest of the interval proportionally.
        let span = end - start;
        let lead = span * 1e-9; // parent's own point
        let mut cursor = start + lead;
        for (k, sz) in kids.iter().zip(&sizes) {
            let width = (span - lead) * sz / total;
            stack.push((*k, cursor, cursor + width));
            cursor += width;
        }
    }
    keys
}

/// Finds the owner of `key` among sorted range `boundaries`, where server
/// `k` owns `[boundaries[k-1], boundaries[k])` and `boundaries[M-1]` is the
/// end of the key space.
#[must_use]
pub fn range_owner(boundaries: &[f64], key: f64) -> usize {
    boundaries
        .partition_point(|&b| b <= key)
        .min(boundaries.len() - 1)
}

/// Weighted-quantile boundaries: splits `(key, weight)` points into
/// `buckets` contiguous ranges whose weights match `capacity_shares`.
///
/// This is the histogram-equalisation step of DROP's HDLB and AngleCut's
/// per-ring tuning.
///
/// # Panics
///
/// Panics if `capacity_shares` is empty.
#[must_use]
pub fn weighted_boundaries(points: &mut [(f64, f64)], capacity_shares: &[f64]) -> Vec<f64> {
    assert!(!capacity_shares.is_empty(), "need at least one bucket");
    points.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total_w: f64 = points.iter().map(|p| p.1).sum();
    let total_c: f64 = capacity_shares.iter().sum();
    let mut boundaries = Vec::with_capacity(capacity_shares.len());
    let mut target = 0.0;
    let mut acc = 0.0;
    let mut idx = 0usize;
    for (b, &c) in capacity_shares.iter().enumerate() {
        if b + 1 == capacity_shares.len() {
            boundaries.push(f64::INFINITY);
            break;
        }
        target += if total_c > 0.0 {
            total_w * c / total_c
        } else {
            0.0
        };
        while idx < points.len() && acc + points[idx].1 <= target {
            acc += points[idx].1;
            idx += 1;
        }
        let boundary = if idx < points.len() {
            points[idx].0
        } else {
            f64::INFINITY
        };
        boundaries.push(boundary);
    }
    boundaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_namespace::TreeBuilder;

    fn sample_tree() -> NamespaceTree {
        let mut b = TreeBuilder::new();
        b.files(["/a/x", "/a/y", "/a/z", "/b/p/q", "/c"]).unwrap();
        b.build()
    }

    #[test]
    fn fnv_is_stable_and_spreads() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"/a/b"), fnv1a(b"/a/c"));
        assert_eq!(fnv1a(b"/same"), fnv1a(b"/same"));
    }

    #[test]
    fn keys_are_subtree_contiguous() {
        let t = sample_tree();
        let keys = locality_keys(&t);
        let a = t.resolve_str("/a").unwrap();
        // Every node in /a's subtree has a key within /a's interval, and
        // every node outside has a key outside it.
        let a_keys: Vec<f64> = t.descendants(a).map(|id| keys[id.index()]).collect();
        let lo = a_keys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = a_keys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for (id, _) in t.nodes() {
            let inside = keys[id.index()] >= lo && keys[id.index()] <= hi;
            assert_eq!(inside, a == id || t.is_ancestor_of(a, id), "node {id}");
        }
    }

    #[test]
    fn keys_follow_ancestry_ordering() {
        let t = sample_tree();
        let keys = locality_keys(&t);
        let q = t.resolve_str("/b/p/q").unwrap();
        // Each ancestor's key is <= the node's key (interval nesting).
        let mut prev = keys[q.index()];
        for anc in t.ancestors(q) {
            assert!(keys[anc.index()] <= prev);
            prev = keys[anc.index()];
        }
    }

    #[test]
    fn range_owner_respects_boundaries() {
        let b = vec![0.25, 0.5, 1.0];
        assert_eq!(range_owner(&b, 0.1), 0);
        assert_eq!(range_owner(&b, 0.25), 1);
        assert_eq!(range_owner(&b, 0.49), 1);
        assert_eq!(range_owner(&b, 0.99), 2);
        assert_eq!(range_owner(&b, 5.0), 2, "clamped to the last range");
    }

    #[test]
    fn weighted_boundaries_equalise_mass() {
        let mut points: Vec<(f64, f64)> = (0..100).map(|i| (i as f64 / 100.0, 1.0)).collect();
        let b = weighted_boundaries(&mut points, &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(b.len(), 4);
        let mut counts = [0usize; 4];
        for (k, _) in &points {
            counts[range_owner(&b, *k)] += 1;
        }
        for c in counts {
            assert!((c as i64 - 25).abs() <= 1, "uneven bucket: {counts:?}");
        }
    }

    #[test]
    fn weighted_boundaries_follow_capacity_shares() {
        let mut points: Vec<(f64, f64)> = (0..100).map(|i| (i as f64 / 100.0, 1.0)).collect();
        let b = weighted_boundaries(&mut points, &[3.0, 1.0]);
        let mut counts = [0usize; 2];
        for (k, _) in &points {
            counts[range_owner(&b, *k)] += 1;
        }
        assert!(counts[0] >= 70 && counts[0] <= 80, "counts: {counts:?}");
    }
}
