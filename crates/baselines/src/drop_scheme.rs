//! DROP: locality-preserving hashing with histogram-based dynamic load
//! balancing (HDLB).

use d2tree_core::Partitioner;
use d2tree_metrics::{Assignment, ClusterSpec, MdsId, Migration, Placement};
use d2tree_namespace::{NamespaceTree, Popularity};

use crate::keys::{locality_keys, range_owner, weighted_boundaries};

/// DROP (Xu et al., MSST'13 / TPDS'14), reimplemented from its published
/// description: every node is mapped by a *locality-preserving hash* onto
/// a linear key space where each subtree occupies a contiguous interval;
/// servers own contiguous key ranges; the HDLB step recomputes the range
/// boundaries as popularity-weighted quantiles so every server carries a
/// load proportional to its capacity.
///
/// Consequences the paper's figures rely on: near-perfect balance (the
/// boundaries track the load histogram exactly) but degrading locality as
/// the cluster grows — more boundaries cut more parent/child edges.
#[derive(Debug)]
pub struct DropScheme {
    seed: u64,
    placement: Option<Placement>,
    keys: Vec<f64>,
    boundaries: Vec<f64>,
}

impl DropScheme {
    /// Creates the scheme.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        DropScheme {
            seed,
            placement: None,
            keys: Vec::new(),
            boundaries: Vec::new(),
        }
    }

    /// The current range boundaries (server `k` owns
    /// `[boundaries[k-1], boundaries[k])`).
    #[must_use]
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    fn rebuild_placement(&mut self, tree: &NamespaceTree, m: usize) -> Placement {
        let mut placement = Placement::new(tree, m);
        for (id, _) in tree.nodes() {
            let owner = range_owner(&self.boundaries, self.keys[id.index()]);
            placement.set(id, Assignment::Single(MdsId(owner as u16)));
        }
        placement
    }
}

impl Partitioner for DropScheme {
    fn name(&self) -> &'static str {
        "DROP"
    }

    fn build(&mut self, tree: &NamespaceTree, pop: &Popularity, cluster: &ClusterSpec) {
        self.keys = locality_keys(tree);
        // Initial boundaries already histogram-equalised (DROP bootstraps
        // its ring from the known namespace); the seed only perturbs ties
        // via a negligible key jitter.
        let jitter = (self.seed % 97) as f64 * 1e-15;
        let mut points: Vec<(f64, f64)> = tree
            .nodes()
            .map(|(id, _)| (self.keys[id.index()] + jitter, pop.individual(id)))
            .collect();
        let shares: Vec<f64> = cluster.ids().map(|k| cluster.capacity_share(k)).collect();
        self.boundaries = weighted_boundaries(&mut points, &shares);
        self.placement = Some(self.rebuild_placement(tree, cluster.len()));
    }

    fn placement(&self) -> &Placement {
        self.placement
            .as_ref()
            .expect("DropScheme used before build")
    }

    /// HDLB: recompute the popularity-weighted quantile boundaries and move
    /// every node whose range changed.
    fn rebalance(
        &mut self,
        tree: &NamespaceTree,
        pop: &Popularity,
        cluster: &ClusterSpec,
    ) -> Vec<Migration> {
        let old = self.placement.take().expect("DropScheme used before build");
        let mut points: Vec<(f64, f64)> = tree
            .nodes()
            .map(|(id, _)| (self.keys[id.index()], pop.individual(id)))
            .collect();
        let shares: Vec<f64> = cluster.ids().map(|k| cluster.capacity_share(k)).collect();
        self.boundaries = weighted_boundaries(&mut points, &shares);
        let fresh = self.rebuild_placement(tree, cluster.len());
        let migrations = tree
            .nodes()
            .filter_map(|(id, _)| {
                let from = old.assignment(id).owner()?;
                let to = fresh.assignment(id).owner()?;
                (from != to).then_some(Migration { node: id, from, to })
            })
            .collect();
        self.placement = Some(fresh);
        migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_metrics::balance;
    use d2tree_workload::{TraceProfile, WorkloadBuilder};

    fn setup(
        m: usize,
    ) -> (
        d2tree_workload::Workload,
        Popularity,
        DropScheme,
        ClusterSpec,
    ) {
        let w = WorkloadBuilder::new(
            TraceProfile::lmbe()
                .with_nodes(2_000)
                .with_operations(40_000),
        )
        .seed(8)
        .build();
        let pop = w.popularity();
        let cluster = ClusterSpec::homogeneous(m, 100.0);
        let mut s = DropScheme::new(4);
        s.build(&w.tree, &pop, &cluster);
        (w, pop, s, cluster)
    }

    #[test]
    fn placement_complete_with_m_ranges() {
        let (w, _pop, s, _) = setup(6);
        assert!(s.placement().is_complete(&w.tree));
        assert_eq!(s.boundaries().len(), 6);
    }

    #[test]
    fn balance_is_strong_from_the_start() {
        let (w, pop, s, cluster) = setup(8);
        let loads = s.loads(&w.tree, &pop);
        let total: f64 = loads.iter().sum();
        // Nodes are indivisible, so perfect quantile boundaries still land
        // within one heaviest-node granule of the ideal load.
        let heaviest = w
            .tree
            .nodes()
            .map(|(id, _)| pop.individual(id))
            .fold(0.0_f64, f64::max);
        for l in &loads {
            assert!(
                *l <= total / 8.0 + heaviest + 1e-9,
                "load {l} vs ideal {} + granule {heaviest}",
                total / 8.0
            );
        }
        assert!(balance(&loads, &cluster) > 0.0);
    }

    #[test]
    fn key_ranges_are_contiguous() {
        let (w, _pop, s, _) = setup(4);
        // Sort nodes by key: owner sequence must be non-decreasing.
        let mut nodes: Vec<_> = w.tree.nodes().map(|(id, _)| id).collect();
        nodes.sort_by(|a, b| s.keys[a.index()].total_cmp(&s.keys[b.index()]));
        let owners: Vec<usize> = nodes
            .iter()
            .map(|&id| s.placement().assignment(id).owner().unwrap().index())
            .collect();
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn hdlb_follows_drift() {
        let (w, mut pop, mut s, cluster) = setup(4);
        // Heat one node massively.
        let victim = w.tree.nodes().map(|(id, _)| id).nth(500).unwrap();
        pop.record(victim, 500_000.0);
        pop.rollup(&w.tree);
        let migrations = s.rebalance(&w.tree, &pop, &cluster);
        assert!(!migrations.is_empty());
        // The hot node is an indivisible granule holding ~92% of the total
        // mass, so scalar balance cannot improve meaningfully; what HDLB
        // guarantees is that the recomputed quantile boundaries land every
        // server within one heaviest-granule of its ideal share.
        let loads = s.loads(&w.tree, &pop);
        let total: f64 = loads.iter().sum();
        let heaviest = w
            .tree
            .nodes()
            .map(|(id, _)| pop.individual(id))
            .fold(0.0_f64, f64::max);
        for l in &loads {
            assert!(
                *l <= total / 4.0 + heaviest + 1e-9,
                "load {l} vs ideal {} + granule {heaviest}",
                total / 4.0
            );
        }
        assert!(balance(&loads, &cluster) > 0.0);
    }
}
