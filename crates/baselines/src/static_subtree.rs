//! Static subtree partitioning.

use d2tree_core::Partitioner;
use d2tree_metrics::{Assignment, ClusterSpec, MdsId, Placement};
use d2tree_namespace::{NamespaceTree, NodeId, Popularity};

use crate::keys::stable_hash;

/// Static subtree partitioning (Sec. II / Sec. VI "Implements"): "the
/// initial metadata partition was created by hashing directories near the
/// root of the hierarchy".
///
/// Every directory at `cut_depth` (default 1 — the children of the root)
/// roots an immutable subtree; the subtree is hashed by its pathname to a
/// server and never moves. Nodes above the cut (the root itself for
/// `cut_depth` 1) are hashed individually.
///
/// The scheme has excellent locality (whole application directories stay
/// on one server) but no answer to skew, which is exactly the trade-off
/// the paper's Figs. 5–7 show.
#[derive(Debug)]
pub struct StaticSubtree {
    seed: u64,
    cut_depth: usize,
    placement: Option<Placement>,
}

impl StaticSubtree {
    /// Creates the scheme with the paper's near-root cut (depth 1).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        StaticSubtree {
            seed,
            cut_depth: 1,
            placement: None,
        }
    }

    /// Overrides how far below the root the immutable subtrees start.
    ///
    /// # Panics
    ///
    /// Panics if `cut_depth == 0`.
    #[must_use]
    pub fn with_cut_depth(mut self, cut_depth: usize) -> Self {
        assert!(cut_depth > 0, "cut depth must be at least 1");
        self.cut_depth = cut_depth;
        self
    }

    fn hash_to_mds(&self, tree: &NamespaceTree, id: NodeId, m: usize) -> MdsId {
        let path = tree.path_of(id).to_string();
        let h = stable_hash(path.as_bytes()) ^ self.seed;
        MdsId((h % m as u64) as u16)
    }
}

impl Partitioner for StaticSubtree {
    fn name(&self) -> &'static str {
        "Static Subtree"
    }

    fn build(&mut self, tree: &NamespaceTree, _pop: &Popularity, cluster: &ClusterSpec) {
        let m = cluster.len();
        let mut placement = Placement::new(tree, m);
        // Depth-first walk carrying the current depth; subtree roots at
        // cut_depth fix the owner for their whole subtree.
        let mut stack: Vec<(NodeId, usize, Option<MdsId>)> = vec![(tree.root(), 0, None)];
        while let Some((id, depth, inherited)) = stack.pop() {
            let owner = match inherited {
                Some(o) => o,
                None => self.hash_to_mds(tree, id, m),
            };
            placement.set(id, Assignment::Single(owner));
            if let Some(node) = tree.node(id) {
                // Children strictly below the cut inherit the owner; the
                // subtree roots at the cut (and anything above it) hash
                // independently.
                let next = if depth + 1 > self.cut_depth {
                    Some(owner)
                } else {
                    None
                };
                for (_, c) in node.children() {
                    stack.push((c, depth + 1, next));
                }
            }
        }
        self.placement = Some(placement);
    }

    fn placement(&self) -> &Placement {
        self.placement
            .as_ref()
            .expect("StaticSubtree used before build")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_workload::{TraceProfile, WorkloadBuilder};

    fn build(m: usize) -> (d2tree_workload::Workload, StaticSubtree) {
        let w = WorkloadBuilder::new(TraceProfile::dtr().with_nodes(1_000).with_operations(5_000))
            .seed(1)
            .build();
        let pop = w.popularity();
        let mut s = StaticSubtree::new(42);
        s.build(&w.tree, &pop, &ClusterSpec::homogeneous(m, 10.0));
        (w, s)
    }

    #[test]
    fn subtrees_are_intact() {
        let (w, s) = build(4);
        // Every node at depth >= 1 shares its owner with its depth-1
        // ancestor.
        for (id, _) in w.tree.nodes() {
            if id == w.tree.root() {
                continue;
            }
            let chain = w.tree.path_from_root(id);
            let top = chain[1]; // depth-1 ancestor
            assert_eq!(
                s.placement().assignment(id),
                s.placement().assignment(top),
                "node {id} strayed from its subtree"
            );
        }
    }

    #[test]
    fn placement_complete_and_static() {
        let (w, mut s) = build(3);
        assert!(s.placement().is_complete(&w.tree));
        let pop = w.popularity();
        let migrations = s.rebalance(&w.tree, &pop, &ClusterSpec::homogeneous(3, 10.0));
        assert!(migrations.is_empty(), "static partitioning never migrates");
    }

    #[test]
    fn different_seeds_give_different_placements() {
        let w = WorkloadBuilder::new(TraceProfile::lmbe().with_nodes(500).with_operations(1_000))
            .seed(2)
            .build();
        let pop = w.popularity();
        let cluster = ClusterSpec::homogeneous(4, 10.0);
        let mut a = StaticSubtree::new(1);
        let mut b = StaticSubtree::new(2);
        a.build(&w.tree, &pop, &cluster);
        b.build(&w.tree, &pop, &cluster);
        let differs = w
            .tree
            .nodes()
            .any(|(id, _)| a.placement().assignment(id) != b.placement().assignment(id));
        assert!(differs);
    }

    #[test]
    fn deeper_cut_creates_finer_subtrees() {
        let w = WorkloadBuilder::new(TraceProfile::dtr().with_nodes(1_500).with_operations(1_000))
            .seed(3)
            .build();
        let pop = w.popularity();
        let cluster = ClusterSpec::homogeneous(8, 10.0);
        let mut coarse = StaticSubtree::new(9);
        let mut fine = StaticSubtree::new(9).with_cut_depth(3);
        coarse.build(&w.tree, &pop, &cluster);
        fine.build(&w.tree, &pop, &cluster);
        let distinct = |s: &StaticSubtree| {
            let mut owners: Vec<_> = w
                .tree
                .nodes()
                .map(|(id, _)| s.placement().assignment(id))
                .collect();
            owners.sort_by_key(|a| format!("{a:?}"));
            owners.dedup();
            owners.len()
        };
        assert!(distinct(&fine) >= distinct(&coarse));
    }
}
