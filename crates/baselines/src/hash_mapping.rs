//! Hash-based mapping: every node placed independently by pathname hash.

use d2tree_core::Partitioner;
use d2tree_metrics::{Assignment, ClusterSpec, MdsId, Migration, Placement};
use d2tree_namespace::{NamespaceTree, Popularity};

use crate::keys::stable_hash;

/// Static hash-based mapping (Sec. II; CalvinFS \[9\], Giga+ \[15\]):
/// hash the full pathname, take it modulo the cluster size.
///
/// Balance is essentially perfect and nothing ever migrates, but a
/// pathname traversal visits a fresh random server at almost every step —
/// the worst-case locality the paper contrasts against. The scheme also
/// exposes the rename problem: [`rename_rehash_count`] counts how many
/// nodes would rehash when a directory is renamed.
///
/// [`rename_rehash_count`]: HashMapping::rename_rehash_count
#[derive(Debug)]
pub struct HashMapping {
    seed: u64,
    placement: Option<Placement>,
}

impl HashMapping {
    /// Creates the scheme.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        HashMapping {
            seed,
            placement: None,
        }
    }

    fn owner(&self, path: &str, m: usize) -> MdsId {
        MdsId(((stable_hash(path.as_bytes()) ^ self.seed) % m as u64) as u16)
    }

    /// How many nodes change servers if the subtree at `root` is renamed:
    /// every descendant's pathname (and hence hash) changes, so in
    /// expectation `(M−1)/M` of the subtree migrates. This is the
    /// "considerable rehashing overhead" of Sec. II.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Partitioner::build`].
    #[must_use]
    pub fn rename_rehash_count(
        &self,
        tree: &NamespaceTree,
        root: d2tree_namespace::NodeId,
        new_name: &str,
    ) -> usize {
        let placement = self
            .placement
            .as_ref()
            .expect("HashMapping used before build");
        let m = placement.cluster_size();
        let old_prefix = tree.path_of(root).to_string();
        let new_prefix = match tree.path_of(root).parent() {
            Some(parent) => format!("{parent}/{new_name}").replace("//", "/"),
            None => return 0,
        };
        tree.descendants(root)
            .filter(|&id| {
                let old_path = tree.path_of(id).to_string();
                let new_path = format!("{new_prefix}{}", &old_path[old_prefix.len()..]);
                self.owner(&old_path, m) != self.owner(&new_path, m)
            })
            .count()
    }
}

impl Partitioner for HashMapping {
    fn name(&self) -> &'static str {
        "Hash Mapping"
    }

    fn build(&mut self, tree: &NamespaceTree, _pop: &Popularity, cluster: &ClusterSpec) {
        let m = cluster.len();
        let mut placement = Placement::new(tree, m);
        for (id, _) in tree.nodes() {
            let path = tree.path_of(id).to_string();
            placement.set(id, Assignment::Single(self.owner(&path, m)));
        }
        self.placement = Some(placement);
    }

    fn placement(&self) -> &Placement {
        self.placement
            .as_ref()
            .expect("HashMapping used before build")
    }

    fn rebalance(
        &mut self,
        _tree: &NamespaceTree,
        _pop: &Popularity,
        _cluster: &ClusterSpec,
    ) -> Vec<Migration> {
        Vec::new() // the hash is the balance policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_workload::{TraceProfile, WorkloadBuilder};

    fn setup(m: usize) -> (d2tree_workload::Workload, HashMapping) {
        let w = WorkloadBuilder::new(
            TraceProfile::lmbe()
                .with_nodes(1_500)
                .with_operations(3_000),
        )
        .seed(4)
        .build();
        let pop = w.popularity();
        let mut s = HashMapping::new(17);
        s.build(&w.tree, &pop, &ClusterSpec::homogeneous(m, 10.0));
        (w, s)
    }

    #[test]
    fn node_counts_spread_evenly() {
        let (w, s) = setup(4);
        let mut counts = [0usize; 4];
        for (id, _) in w.tree.nodes() {
            counts[s.placement().assignment(id).owner().unwrap().index()] += 1;
        }
        let ideal = w.tree.node_count() / 4;
        for c in counts {
            assert!(
                (c as i64 - ideal as i64).abs() < (ideal as i64) / 2,
                "counts {counts:?}"
            );
        }
    }

    #[test]
    fn locality_is_poor() {
        use d2tree_core::Partitioner as _;
        let (w, s) = setup(8);
        // Deep nodes should accumulate many jumps.
        let deepest = w
            .tree
            .nodes()
            .map(|(id, _)| id)
            .max_by_key(|&id| w.tree.depth(id))
            .unwrap();
        assert!(w.tree.depth(deepest) >= 5);
        assert!(s.jumps(&w.tree, deepest) >= 2);
    }

    #[test]
    fn rename_forces_rehashing() {
        let (w, s) = setup(4);
        // Find a directory with a reasonably large subtree.
        let dir = w
            .tree
            .nodes()
            .filter(|(_, n)| n.kind().is_directory())
            .map(|(id, _)| id)
            .filter(|&id| id != w.tree.root())
            .max_by_key(|&id| w.tree.subtree_size(id))
            .unwrap();
        let size = w.tree.subtree_size(dir);
        let moved = s.rename_rehash_count(&w.tree, dir, "renamed");
        // Expect roughly (M-1)/M = 75% of descendants to move.
        assert!(size >= 10);
        assert!(
            moved as f64 >= 0.4 * size as f64,
            "rename moved only {moved} of {size} nodes"
        );
    }

    #[test]
    fn rebalance_is_a_noop() {
        let (w, mut s) = setup(4);
        let pop = w.popularity();
        assert!(s
            .rebalance(&w.tree, &pop, &ClusterSpec::homogeneous(4, 10.0))
            .is_empty());
    }
}
