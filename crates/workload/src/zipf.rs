//! Seeded Zipf sampling over `n` ranks.

use rand::Rng;

/// A Zipf–Mandelbrot(`n`, `s`, `q`) distribution sampler.
///
/// Rank `k` (1-based) is drawn with probability proportional to
/// `1 / (k + q)^s`; `q = 0` is the classic Zipf law. The shift `q`
/// flattens the head of the distribution — with `q = 0` rank 1 can hold
/// 20%+ of all mass, which is far more concentrated than real filesystem
/// traces, while the top-1% aggregate share (what the global layer
/// captures) stays tunable through `s`.
///
/// The sampler precomputes the cumulative weight table once (`O(n)`
/// memory) and draws by binary search (`O(log n)` per sample), which is
/// fast and — unlike rejection samplers — exactly matches the weights
/// used for analytic popularity assignment.
///
/// # Example
///
/// ```
/// use d2tree_workload::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let zipf = Zipf::new(1_000, 1.1);
/// let mut rng = StdRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1_000);
/// // Rank 0 is the most likely single rank.
/// assert!(zipf.weight(0) > zipf.weight(1));
///
/// // A shifted distribution has a much flatter head.
/// let shifted = Zipf::with_shift(1_000, 1.1, 50.0);
/// assert!(shifted.weight(0) < zipf.weight(0));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
    exponent: f64,
    shift: f64,
}

impl Zipf {
    /// Builds the classic (unshifted) sampler for `n` ranks with
    /// exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        Self::with_shift(n, s, 0.0)
    }

    /// Builds a Zipf–Mandelbrot sampler with head-flattening shift `q`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `s` is negative or non-finite, or `q` is
    /// negative or non-finite.
    #[must_use]
    pub fn with_shift(n: usize, s: f64, q: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be finite and non-negative"
        );
        assert!(
            q.is_finite() && q >= 0.0,
            "Zipf shift must be finite and non-negative"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64 + q).powf(s);
            cumulative.push(acc);
        }
        Zipf {
            cumulative,
            exponent: s,
            shift: q,
        }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution has no ranks (never true for a constructed
    /// sampler).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// The exponent `s`.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The Mandelbrot shift `q` (0 for classic Zipf).
    #[must_use]
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Probability mass of 0-based rank `k`.
    #[must_use]
    pub fn weight(&self, k: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let prev = if k == 0 { 0.0 } else { self.cumulative[k - 1] };
        (self.cumulative[k] - prev) / total
    }

    /// Cumulative probability mass of ranks `0..=k`.
    #[must_use]
    pub fn cumulative_weight(&self, k: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        self.cumulative[k] / total
    }

    /// Draws a 0-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x: f64 = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_sum_to_one() {
        let z = Zipf::new(100, 1.2);
        let total: f64 = (0..100).map(|k| z.weight(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((z.cumulative_weight(99) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skew_increases_with_exponent() {
        let flat = Zipf::new(1000, 0.0);
        let skewed = Zipf::new(1000, 1.5);
        assert!((flat.weight(0) - 0.001).abs() < 1e-9);
        assert!(skewed.weight(0) > 0.1);
    }

    #[test]
    fn sampling_matches_weights_roughly() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let expected = z.weight(k) * n as f64;
            let got = count as f64;
            assert!(
                (got - expected).abs() < 5.0 * expected.sqrt().max(10.0),
                "rank {k}: expected ~{expected}, got {got}"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(500, 1.1);
        let a: Vec<usize> = (0..50)
            .scan(StdRng::seed_from_u64(9), |r, _| Some(z.sample(r)))
            .collect();
        let b: Vec<usize> = (0..50)
            .scan(StdRng::seed_from_u64(9), |r, _| Some(z.sample(r)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
