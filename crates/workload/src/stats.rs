//! Trace statistics backing Tables I and II.

use std::fmt;

use d2tree_namespace::NamespaceTree;
use serde::{Deserialize, Serialize};

use crate::trace::{OpKind, Trace};

/// Histogram of operation-target depths.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepthHistogram {
    counts: Vec<u64>,
}

impl DepthHistogram {
    /// Builds the histogram of target depths for `trace` over `tree`.
    #[must_use]
    pub fn new(trace: &Trace, tree: &NamespaceTree) -> Self {
        let mut counts = Vec::new();
        for op in trace {
            let d = tree.depth(op.target);
            if counts.len() <= d {
                counts.resize(d + 1, 0);
            }
            counts[d] += 1;
        }
        DepthHistogram { counts }
    }

    /// Count of accesses at `depth`.
    #[must_use]
    pub fn count(&self, depth: usize) -> u64 {
        self.counts.get(depth).copied().unwrap_or(0)
    }

    /// All per-depth counts, index = depth.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Mean target depth.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }
}

/// Aggregate statistics of a trace (our analogue of Tables I and II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Trace name.
    pub name: String,
    /// Operation count.
    pub records: u64,
    /// Live node count of the namespace.
    pub nodes: usize,
    /// Maximum namespace depth.
    pub max_depth: usize,
    /// Fraction of read operations.
    pub read_frac: f64,
    /// Fraction of write operations.
    pub write_frac: f64,
    /// Fraction of update operations.
    pub update_frac: f64,
    /// Mean depth of accessed targets.
    pub mean_access_depth: f64,
}

impl TraceStats {
    /// Measures `trace` over `tree`.
    #[must_use]
    pub fn measure(name: &str, trace: &Trace, tree: &NamespaceTree) -> Self {
        let mut read = 0u64;
        let mut write = 0u64;
        let mut update = 0u64;
        for op in trace {
            match op.kind {
                OpKind::Read => read += 1,
                OpKind::Write => write += 1,
                OpKind::Update => update += 1,
            }
        }
        let total = (read + write + update).max(1) as f64;
        let hist = DepthHistogram::new(trace, tree);
        TraceStats {
            name: name.to_owned(),
            records: read + write + update,
            nodes: tree.node_count(),
            max_depth: tree.max_depth(),
            read_frac: read as f64 / total,
            write_frac: write as f64 / total,
            update_frac: update as f64 / total,
            mean_access_depth: hist.mean(),
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ops over {} nodes (max depth {}), r/w/u = {:.1}%/{:.1}%/{:.1}%",
            self.name,
            self.records,
            self.nodes,
            self.max_depth,
            self.read_frac * 100.0,
            self.write_frac * 100.0,
            self.update_frac * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::TraceProfile;
    use crate::trace::WorkloadBuilder;

    #[test]
    fn stats_fracs_sum_to_one() {
        let w = WorkloadBuilder::new(TraceProfile::ra().with_nodes(500).with_operations(5_000))
            .seed(3)
            .build();
        let s = TraceStats::measure("RA", &w.trace, &w.tree);
        assert_eq!(s.records, 5_000);
        assert!((s.read_frac + s.write_frac + s.update_frac - 1.0).abs() < 1e-9);
        assert_eq!(s.max_depth, 13);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn histogram_counts_all_ops() {
        let w = WorkloadBuilder::new(TraceProfile::lmbe().with_nodes(400).with_operations(2_000))
            .seed(4)
            .build();
        let h = DepthHistogram::new(&w.trace, &w.tree);
        let total: u64 = h.counts().iter().sum();
        assert_eq!(total, 2_000);
        assert!(h.mean() > 0.0);
        assert_eq!(h.count(1_000), 0);
    }

    #[test]
    fn empty_trace_histogram() {
        let tree = d2tree_namespace::NamespaceTree::new();
        let h = DepthHistogram::new(&Trace::default(), &tree);
        assert_eq!(h.mean(), 0.0);
        assert!(h.counts().is_empty());
    }
}
