//! Namespace-tree synthesis from a [`TraceProfile`].

use d2tree_namespace::{NamespaceTree, NodeId, NodeKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::profile::TraceProfile;

/// Summary of a synthesised namespace, reported next to Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthesisReport {
    /// Live node count (including the root).
    pub nodes: usize,
    /// Directory count.
    pub directories: usize,
    /// File count.
    pub files: usize,
    /// Maximum node depth (equals the profile's `max_depth`).
    pub max_depth: usize,
    /// Mean node depth.
    pub mean_depth: f64,
}

/// Synthesises a namespace tree matching `profile`'s shape parameters.
///
/// The tree always contains one "spine" path reaching exactly
/// `profile.max_depth`, so the published Table I maximum depths are met
/// precisely. The remaining nodes attach to existing directories chosen
/// depth-weighted by `depth_gamma^depth`: values above 1 grow deep,
/// DTR-like chains, values below 1 grow wide, LMBE-like crowns.
///
/// Generation is fully determined by `seed`.
///
/// # Panics
///
/// Panics if `profile.nodes` is smaller than `profile.max_depth + 1`
/// (the spine alone needs that many nodes) or `max_depth` is zero.
///
/// # Example
///
/// ```
/// use d2tree_workload::{synthesize_tree, TraceProfile};
///
/// let profile = TraceProfile::lmbe().with_nodes(1_000);
/// let (tree, report) = synthesize_tree(&profile, 7);
/// assert_eq!(report.nodes, 1_000);
/// assert_eq!(tree.max_depth(), 9);
/// ```
#[must_use]
pub fn synthesize_tree(profile: &TraceProfile, seed: u64) -> (NamespaceTree, SynthesisReport) {
    assert!(profile.max_depth >= 1, "max_depth must be at least 1");
    assert!(
        profile.nodes > profile.max_depth,
        "need at least max_depth + 1 nodes for the spine"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree = NamespaceTree::new();

    // Directories eligible for children, bucketed by depth. Depth-level
    // sampling keeps attachment O(max_depth) per node.
    let mut dirs_at: Vec<Vec<NodeId>> = vec![Vec::new(); profile.max_depth];
    dirs_at[0].push(tree.root());
    let mut next_name = 0usize;

    // Spine: directories to depth max_depth - 1, a file at max_depth.
    let mut cur = tree.root();
    for (d, level) in dirs_at.iter_mut().enumerate().skip(1) {
        cur = tree
            .create(cur, &format!("spine{d}"), NodeKind::Directory)
            .expect("spine names are unique");
        level.push(cur);
    }
    tree.create(cur, "spine_leaf", NodeKind::File)
        .expect("fresh leaf name");

    while tree.node_count() < profile.nodes {
        // Pick an attachment depth proportional to count_d * gamma^d.
        let mut weights = Vec::with_capacity(profile.max_depth);
        let mut total = 0.0;
        let mut gamma_pow = 1.0;
        for dirs in &dirs_at {
            total += dirs.len() as f64 * gamma_pow;
            gamma_pow *= profile.depth_gamma;
            weights.push(total);
        }
        let x: f64 = rng.gen_range(0.0..total);
        let depth = weights
            .partition_point(|&w| w <= x)
            .min(profile.max_depth - 1);
        let dirs = &dirs_at[depth];
        let parent = dirs[rng.gen_range(0..dirs.len())];

        let make_dir = rng.gen_bool(profile.dir_ratio.clamp(0.0, 1.0));
        next_name += 1;
        if make_dir {
            let id = tree
                .create(parent, &format!("d{next_name}"), NodeKind::Directory)
                .expect("generated names are unique");
            if depth + 1 < profile.max_depth {
                dirs_at[depth + 1].push(id);
            }
        } else {
            tree.create(parent, &format!("f{next_name}"), NodeKind::File)
                .expect("generated names are unique");
        }
    }

    let mut depth_sum = 0usize;
    let mut count = 0usize;
    let mut depth = vec![0usize; tree.arena_size()];
    for (id, node) in tree.nodes() {
        if let Some(p) = node.parent() {
            depth[id.index()] = depth[p.index()] + 1;
        }
        depth_sum += depth[id.index()];
        count += 1;
    }
    let report = SynthesisReport {
        nodes: tree.node_count(),
        directories: tree.directory_count(),
        files: tree.file_count(),
        max_depth: tree.max_depth(),
        mean_depth: depth_sum as f64 / count as f64,
    };
    (tree, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_exact_node_count_and_depth() {
        for profile in [
            TraceProfile::dtr(),
            TraceProfile::lmbe(),
            TraceProfile::ra(),
        ] {
            let profile = profile.with_nodes(1_500);
            let (tree, report) = synthesize_tree(&profile, 3);
            assert_eq!(tree.node_count(), 1_500);
            assert_eq!(report.max_depth, profile.max_depth);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let p = TraceProfile::ra().with_nodes(800);
        let (a, _) = synthesize_tree(&p, 11);
        let (b, _) = synthesize_tree(&p, 11);
        let pa: Vec<String> = a.nodes().map(|(id, _)| a.path_of(id).to_string()).collect();
        let pb: Vec<String> = b.nodes().map(|(id, _)| b.path_of(id).to_string()).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn different_seeds_differ() {
        let p = TraceProfile::lmbe().with_nodes(600);
        let (a, _) = synthesize_tree(&p, 1);
        let (b, _) = synthesize_tree(&p, 2);
        let pa: Vec<String> = a.nodes().map(|(id, _)| a.path_of(id).to_string()).collect();
        let pb: Vec<String> = b.nodes().map(|(id, _)| b.path_of(id).to_string()).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn gamma_shapes_mean_depth() {
        let deep = TraceProfile::dtr().with_nodes(3_000);
        let wide = TraceProfile::lmbe().with_nodes(3_000);
        let (_, rd) = synthesize_tree(&deep, 5);
        let (_, rw) = synthesize_tree(&wide, 5);
        assert!(
            rd.mean_depth > rw.mean_depth,
            "DTR ({}) should be deeper on average than LMBE ({})",
            rd.mean_depth,
            rw.mean_depth
        );
    }

    #[test]
    #[should_panic(expected = "spine")]
    fn too_few_nodes_panics() {
        let p = TraceProfile::dtr().with_nodes(10); // spine alone needs 50
        let _ = synthesize_tree(&p, 0);
    }
}
