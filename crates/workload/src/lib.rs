//! Synthetic metadata workloads for the D2-Tree reproduction.
//!
//! The paper evaluates on three 24-hour Microsoft production traces —
//! *Development Tools Release* (DTR), *Live Maps Back End* (LMBE) and
//! *Radius Authentication* (RA), SNIA IOTTA trace #158 — which are not
//! redistributable. This crate substitutes seeded synthetic equivalents that
//! reproduce the characteristics the evaluation actually depends on:
//!
//! * namespace shape — node count and the published maximum depths
//!   (49 / 9 / 13, Table I);
//! * access skew — Zipf-distributed per-node popularity with a tunable
//!   depth bias, so the paper's measured global-layer hit rates emerge
//!   (≈83% of DTR queries hit the top-1% global layer, ≈58.6% of LMBE
//!   queries go to the local layer);
//! * operation mix — read/write/update fractions matching Table II.
//!
//! # Example
//!
//! ```
//! use d2tree_workload::{TraceProfile, WorkloadBuilder};
//!
//! let profile = TraceProfile::dtr().with_nodes(2_000).with_operations(10_000);
//! let workload = WorkloadBuilder::new(profile).seed(42).build();
//! assert_eq!(workload.tree.max_depth(), 49);
//! assert_eq!(workload.trace.len(), 10_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod drift;
pub mod io;
mod profile;
mod stats;
mod synth;
mod trace;
mod zipf;

pub use drift::DriftingWorkload;
pub use io::TraceIoError;
pub use profile::{OpMix, TraceProfile};
pub use stats::{DepthHistogram, TraceStats};
pub use synth::{synthesize_tree, SynthesisReport};
pub use trace::{OpKind, Operation, Trace, TraceGen, Workload, WorkloadBuilder};
pub use zipf::Zipf;
