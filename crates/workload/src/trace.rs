//! Operation streams over a synthesised namespace.

use d2tree_namespace::{NamespaceTree, NodeId, Popularity};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::profile::TraceProfile;
use crate::synth::{synthesize_tree, SynthesisReport};
use crate::zipf::Zipf;

/// Kind of a metadata operation (the paper's filtered trace, Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Metadata read — a pure query against the MDS cluster.
    Read,
    /// Metadata write (e.g. create/stat-update on open) — also served as a
    /// query; the paper notes read and write "only cause simply a query
    /// operation to MDS's".
    Write,
    /// Metadata update — mutates the node; takes the global-layer lock if
    /// the target is replicated.
    Update,
}

impl OpKind {
    /// Whether the operation mutates metadata.
    #[must_use]
    pub fn is_mutation(self) -> bool {
        matches!(self, OpKind::Update)
    }
}

/// One trace record: an operation aimed at a namespace node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Operation {
    /// Target node.
    pub target: NodeId,
    /// Operation kind.
    pub kind: OpKind,
}

/// A materialised operation trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    ops: Vec<Operation>,
}

impl Trace {
    /// Wraps a vector of operations.
    #[must_use]
    pub fn from_ops(ops: Vec<Operation>) -> Self {
        Trace { ops }
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations in replay order.
    #[must_use]
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Iterates over the operations.
    pub fn iter(&self) -> impl Iterator<Item = &Operation> + '_ {
        self.ops.iter()
    }

    /// Accumulates per-node individual popularity from this trace
    /// (1 unit per operation, any kind) and rolls it up.
    #[must_use]
    pub fn popularity(&self, tree: &NamespaceTree) -> Popularity {
        let mut pop = Popularity::new(tree);
        for op in &self.ops {
            pop.record(op.target, 1.0);
        }
        pop.rollup(tree);
        pop
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Operation;
    type IntoIter = std::slice::Iter<'a, Operation>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

impl FromIterator<Operation> for Trace {
    fn from_iter<T: IntoIterator<Item = Operation>>(iter: T) -> Self {
        Trace {
            ops: iter.into_iter().collect(),
        }
    }
}

impl Extend<Operation> for Trace {
    fn extend<T: IntoIterator<Item = Operation>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

/// Lazy, seeded operation generator.
///
/// Popularity ranks are fixed at construction: node hotness is
/// `shallow_bias · normalised_depth + (1 − shallow_bias) · noise`
/// (lower is hotter), and the `k`-th hottest node receives the `k`-th Zipf
/// rank. Each [`next`](Iterator::next) then draws a target by Zipf rank and
/// a kind by the profile's operation mix.
#[derive(Debug)]
pub struct TraceGen {
    order: Vec<NodeId>,
    zipf: Zipf,
    read: f64,
    write: f64,
    remaining: usize,
    rng: StdRng,
}

impl TraceGen {
    /// Builds a generator over `tree` for `profile`, seeded by `seed`.
    #[must_use]
    pub fn new(profile: &TraceProfile, tree: &NamespaceTree, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let max_depth = tree.max_depth().max(1) as f64;

        let mut depth = vec![0usize; tree.arena_size()];
        let mut keyed: Vec<(f64, NodeId)> = Vec::with_capacity(tree.node_count());
        for (id, node) in tree.nodes() {
            if let Some(p) = node.parent() {
                depth[id.index()] = depth[p.index()] + 1;
            }
            let noise: f64 = rng.gen_range(0.0..1.0);
            let key = profile.shallow_bias * (depth[id.index()] as f64 / max_depth)
                + (1.0 - profile.shallow_bias) * noise;
            keyed.push((key, id));
        }
        keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let order: Vec<NodeId> = keyed.into_iter().map(|(_, id)| id).collect();
        let zipf = Zipf::with_shift(order.len(), profile.zipf_exponent, profile.zipf_shift);
        TraceGen {
            order,
            zipf,
            read: profile.op_mix.read,
            write: profile.op_mix.write,
            remaining: profile.operations,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The hotness ordering: element 0 is the hottest node.
    #[must_use]
    pub fn hot_order(&self) -> &[NodeId] {
        &self.order
    }
}

impl Iterator for TraceGen {
    type Item = Operation;

    fn next(&mut self) -> Option<Operation> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let target = self.order[self.zipf.sample(&mut self.rng)];
        let x: f64 = self.rng.gen_range(0.0..1.0);
        let kind = if x < self.read {
            OpKind::Read
        } else if x < self.read + self.write {
            OpKind::Write
        } else {
            OpKind::Update
        };
        Some(Operation { target, kind })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for TraceGen {}

/// A fully generated workload: the synthesised tree plus its trace.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The profile the workload was generated from.
    pub profile: TraceProfile,
    /// Synthesised namespace tree.
    pub tree: NamespaceTree,
    /// Shape summary of the synthesis.
    pub report: SynthesisReport,
    /// Generated operation trace.
    pub trace: Trace,
}

impl Workload {
    /// Popularity accumulated from the whole trace, rolled up.
    #[must_use]
    pub fn popularity(&self) -> Popularity {
        self.trace.popularity(&self.tree)
    }
}

/// Builder tying a [`TraceProfile`] and a seed into a [`Workload`].
///
/// # Example
///
/// ```
/// use d2tree_workload::{TraceProfile, WorkloadBuilder};
///
/// let w = WorkloadBuilder::new(TraceProfile::ra().with_nodes(500).with_operations(1_000))
///     .seed(1)
///     .build();
/// assert_eq!(w.trace.len(), 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    profile: TraceProfile,
    seed: u64,
}

impl WorkloadBuilder {
    /// Starts a builder for `profile` with seed 0.
    #[must_use]
    pub fn new(profile: TraceProfile) -> Self {
        WorkloadBuilder { profile, seed: 0 }
    }

    /// Sets the generation seed (tree and trace both derive from it).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Synthesises the tree and generates the trace.
    #[must_use]
    pub fn build(self) -> Workload {
        let (tree, report) = synthesize_tree(&self.profile, self.seed);
        let trace: Trace = TraceGen::new(&self.profile, &tree, self.seed).collect();
        Workload {
            profile: self.profile,
            tree,
            report,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::OpMix;

    fn small(profile: TraceProfile) -> Workload {
        WorkloadBuilder::new(profile.with_nodes(1_000).with_operations(20_000))
            .seed(5)
            .build()
    }

    #[test]
    fn generates_requested_op_count() {
        let w = small(TraceProfile::dtr());
        assert_eq!(w.trace.len(), 20_000);
    }

    #[test]
    fn op_mix_close_to_profile() {
        let w = small(TraceProfile::ra());
        let updates = w.trace.iter().filter(|o| o.kind == OpKind::Update).count() as f64;
        let frac = updates / w.trace.len() as f64;
        assert!(
            (frac - OpMix::ra().update).abs() < 0.02,
            "update fraction {frac}"
        );
    }

    #[test]
    fn shallow_bias_concentrates_on_shallow_nodes() {
        let deep_biased = small(TraceProfile::dtr().with_shallow_bias(0.95));
        let unbiased = small(TraceProfile::dtr().with_shallow_bias(0.0));
        let mean_depth = |w: &Workload| {
            let total: usize = w.trace.iter().map(|o| w.tree.depth(o.target)).sum();
            total as f64 / w.trace.len() as f64
        };
        assert!(mean_depth(&deep_biased) < mean_depth(&unbiased));
    }

    #[test]
    fn popularity_counts_every_op() {
        let w = small(TraceProfile::lmbe());
        let pop = w.popularity();
        assert_eq!(pop.total(w.tree.root()), w.trace.len() as f64);
    }

    #[test]
    fn trace_is_deterministic() {
        let a = small(TraceProfile::dtr());
        let b = small(TraceProfile::dtr());
        assert_eq!(a.trace.ops(), b.trace.ops());
    }

    #[test]
    fn mutation_predicate() {
        assert!(OpKind::Update.is_mutation());
        assert!(!OpKind::Read.is_mutation());
        assert!(!OpKind::Write.is_mutation());
    }

    #[test]
    fn trace_collects_from_iterator() {
        let w = small(TraceProfile::lmbe());
        let reads: Trace = w
            .trace
            .iter()
            .copied()
            .filter(|o| o.kind == OpKind::Read)
            .collect();
        assert!(!reads.is_empty());
        assert!(reads.len() < w.trace.len());
    }

    #[test]
    fn hot_order_covers_all_nodes() {
        let p = TraceProfile::dtr().with_nodes(300).with_operations(1);
        let (tree, _) = synthesize_tree(&p, 2);
        let gen = TraceGen::new(&p, &tree, 2);
        assert_eq!(gen.hot_order().len(), tree.node_count());
    }
}
