//! Plain-text persistence for namespaces and traces.
//!
//! The format is deliberately trivial — one record per line — so traces
//! can be inspected, filtered and diffed with standard tools, and so real
//! trace files (e.g. a converted SNIA dump) can be fed to every harness in
//! this repository:
//!
//! ```text
//! # namespace: kind <space> path
//! D /home/alice
//! F /home/alice/notes.txt
//!
//! # trace: op <space> path
//! R /home/alice/notes.txt
//! U /home/alice
//! ```

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

use d2tree_namespace::{NamespaceTree, NodeKind, NsPath, TreeError};

use crate::trace::{OpKind, Operation, Trace};

/// Errors from reading namespace/trace files.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that does not follow `<tag> <path>`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A trace line referencing a path missing from the namespace.
    UnknownPath {
        /// 1-based line number.
        line: usize,
        /// The unresolvable path.
        path: String,
    },
    /// A namespace line that conflicts with earlier lines.
    Tree(TreeError),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o failure: {e}"),
            TraceIoError::Malformed { line, content } => {
                write!(f, "malformed record at line {line}: {content:?}")
            }
            TraceIoError::UnknownPath { line, path } => {
                write!(f, "unknown path at line {line}: {path}")
            }
            TraceIoError::Tree(e) => write!(f, "inconsistent namespace record: {e}"),
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Tree(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<TreeError> for TraceIoError {
    fn from(e: TreeError) -> Self {
        TraceIoError::Tree(e)
    }
}

/// Writes the namespace as `D|F <path>` lines in deterministic DFS order
/// (the root is implicit and omitted).
///
/// A `&mut` writer works too, as for any `W: Write` function.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_tree<W: Write>(mut out: W, tree: &NamespaceTree) -> io::Result<()> {
    for id in tree.descendants(tree.root()) {
        if id == tree.root() {
            continue;
        }
        let node = tree.node(id).expect("live traversal");
        let tag = if node.kind().is_directory() { 'D' } else { 'F' };
        writeln!(out, "{tag} {}", tree.path_of(id))?;
    }
    Ok(())
}

/// Reads a namespace written by [`write_tree`]. Blank lines and lines
/// starting with `#` are ignored; intermediate directories are created on
/// demand, so the format also accepts bare file lists.
///
/// # Errors
///
/// [`TraceIoError::Malformed`] for bad records, [`TraceIoError::Tree`]
/// for kind conflicts, [`TraceIoError::Io`] for I/O failures.
pub fn read_tree<R: BufRead>(input: R) -> Result<NamespaceTree, TraceIoError> {
    let mut tree = NamespaceTree::new();
    for (idx, line) in input.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (kind, path) = parse_line(trimmed, idx + 1)?;
        let kind = match kind {
            'D' => NodeKind::Directory,
            'F' => NodeKind::File,
            _ => {
                return Err(TraceIoError::Malformed {
                    line: idx + 1,
                    content: trimmed.to_owned(),
                })
            }
        };
        let parsed: NsPath = path.parse().map_err(|_| TraceIoError::Malformed {
            line: idx + 1,
            content: trimmed.to_owned(),
        })?;
        tree.create_path(&parsed, kind)?;
    }
    Ok(tree)
}

/// Writes a trace as `R|W|U <path>` lines, one per operation, in replay
/// order.
///
/// # Errors
///
/// Propagates I/O failures.
///
/// # Panics
///
/// Panics if an operation targets a node that is no longer live in
/// `tree`.
pub fn write_trace<W: Write>(mut out: W, trace: &Trace, tree: &NamespaceTree) -> io::Result<()> {
    for op in trace {
        let tag = match op.kind {
            OpKind::Read => 'R',
            OpKind::Write => 'W',
            OpKind::Update => 'U',
        };
        writeln!(out, "{tag} {}", tree.path_of(op.target))?;
    }
    Ok(())
}

/// Reads a trace written by [`write_trace`], resolving every path against
/// `tree`.
///
/// # Errors
///
/// [`TraceIoError::UnknownPath`] when a path does not resolve,
/// [`TraceIoError::Malformed`] for bad records.
pub fn read_trace<R: BufRead>(input: R, tree: &NamespaceTree) -> Result<Trace, TraceIoError> {
    let mut ops = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (tag, path) = parse_line(trimmed, idx + 1)?;
        let kind = match tag {
            'R' => OpKind::Read,
            'W' => OpKind::Write,
            'U' => OpKind::Update,
            _ => {
                return Err(TraceIoError::Malformed {
                    line: idx + 1,
                    content: trimmed.to_owned(),
                })
            }
        };
        let parsed: NsPath = path.parse().map_err(|_| TraceIoError::Malformed {
            line: idx + 1,
            content: trimmed.to_owned(),
        })?;
        let target = tree
            .resolve(&parsed)
            .ok_or_else(|| TraceIoError::UnknownPath {
                line: idx + 1,
                path: path.to_owned(),
            })?;
        ops.push(Operation { target, kind });
    }
    Ok(Trace::from_ops(ops))
}

fn parse_line(line: &str, line_no: usize) -> Result<(char, &str), TraceIoError> {
    let mut chars = line.chars();
    let tag = chars.next().ok_or_else(|| TraceIoError::Malformed {
        line: line_no,
        content: line.to_owned(),
    })?;
    let rest = chars.as_str();
    let path = rest
        .strip_prefix(' ')
        .ok_or_else(|| TraceIoError::Malformed {
            line: line_no,
            content: line.to_owned(),
        })?;
    Ok((tag, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::TraceProfile;
    use crate::trace::WorkloadBuilder;
    use std::io::BufReader;

    #[test]
    fn tree_roundtrip() {
        let w = WorkloadBuilder::new(TraceProfile::lmbe().with_nodes(300).with_operations(10))
            .seed(1)
            .build();
        let mut buf = Vec::new();
        write_tree(&mut buf, &w.tree).unwrap();
        let back = read_tree(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.node_count(), w.tree.node_count());
        assert_eq!(back.directory_count(), w.tree.directory_count());
        assert_eq!(back.max_depth(), w.tree.max_depth());
        for (id, _) in w.tree.nodes() {
            if id == w.tree.root() {
                continue;
            }
            let p = w.tree.path_of(id);
            assert!(back.resolve(&p).is_some(), "missing {p}");
        }
    }

    #[test]
    fn trace_roundtrip_preserves_order_and_kinds() {
        let w = WorkloadBuilder::new(TraceProfile::ra().with_nodes(200).with_operations(500))
            .seed(2)
            .build();
        let mut tree_buf = Vec::new();
        write_tree(&mut tree_buf, &w.tree).unwrap();
        let mut trace_buf = Vec::new();
        write_trace(&mut trace_buf, &w.trace, &w.tree).unwrap();

        let tree = read_tree(BufReader::new(tree_buf.as_slice())).unwrap();
        let trace = read_trace(BufReader::new(trace_buf.as_slice()), &tree).unwrap();
        assert_eq!(trace.len(), w.trace.len());
        for (a, b) in trace.iter().zip(&w.trace) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(tree.path_of(a.target), w.tree.path_of(b.target));
        }
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let input = "# a comment\n\nF /a/b\nD /c\n";
        let tree = read_tree(BufReader::new(input.as_bytes())).unwrap();
        assert!(tree.resolve_str("/a/b").is_ok());
        assert!(tree.resolve_str("/c").is_ok());
        assert_eq!(tree.file_count(), 1);
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let input = "F /ok\nnonsense\n";
        let err = read_tree(BufReader::new(input.as_bytes())).unwrap_err();
        match err {
            TraceIoError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error: {other}"),
        }
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn unknown_trace_paths_are_reported() {
        let tree = read_tree(BufReader::new("F /x\n".as_bytes())).unwrap();
        let err = read_trace(BufReader::new("R /does/not/exist\n".as_bytes()), &tree).unwrap_err();
        assert!(matches!(err, TraceIoError::UnknownPath { line: 1, .. }));
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(matches!(
            read_tree(BufReader::new("X /a\n".as_bytes())),
            Err(TraceIoError::Malformed { .. })
        ));
        let tree = read_tree(BufReader::new("F /a\n".as_bytes())).unwrap();
        assert!(matches!(
            read_trace(BufReader::new("Z /a\n".as_bytes()), &tree),
            Err(TraceIoError::Malformed { .. })
        ));
    }
}
