//! Phased workloads with drifting hotspots.
//!
//! The paper's Dynamic-Adjustment exists because "both the size and
//! popularity of subtrees change over time in an unpredictable manner"
//! (Sec. IV-B). This module generates that: a trace split into phases,
//! each re-drawing which nodes are hot (while keeping the profile's depth
//! bias and operation mix), so rebalancing machinery has something real
//! to chase.

use d2tree_namespace::NamespaceTree;

use crate::profile::TraceProfile;
use crate::synth::synthesize_tree;
use crate::trace::{Trace, TraceGen};

/// A workload whose hot set shifts between phases.
#[derive(Debug, Clone)]
pub struct DriftingWorkload {
    /// The profile all phases share.
    pub profile: TraceProfile,
    /// The namespace (fixed across phases).
    pub tree: NamespaceTree,
    /// One trace per phase, in order.
    pub phases: Vec<Trace>,
}

impl DriftingWorkload {
    /// Generates `phases` traces over one synthesised namespace.
    ///
    /// Each phase re-seeds the hotness noise, so the identity of the hot
    /// nodes shifts phase over phase — strongly for low
    /// `shallow_bias` profiles (hotness is mostly noise) and mildly for
    /// high-bias ones (depth pins most of the ranking). Operation counts
    /// per phase are `profile.operations / phases`.
    ///
    /// # Panics
    ///
    /// Panics if `phases == 0` or the profile has fewer operations than
    /// phases.
    #[must_use]
    pub fn generate(profile: TraceProfile, phases: usize, seed: u64) -> Self {
        assert!(phases > 0, "need at least one phase");
        assert!(
            profile.operations >= phases,
            "need at least one operation per phase"
        );
        let (tree, _) = synthesize_tree(&profile, seed);
        let per_phase = profile.operations / phases;
        let phase_profile = profile.clone().with_operations(per_phase);
        let traces = (0..phases)
            .map(|p| {
                // Different seed → different hotness noise → drifted hot set.
                TraceGen::new(&phase_profile, &tree, seed.wrapping_add(1 + p as u64)).collect()
            })
            .collect();
        DriftingWorkload {
            profile,
            tree,
            phases: traces,
        }
    }

    /// Number of phases.
    #[must_use]
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }

    /// Fraction of the top-`k` hot nodes of phase `a` that are still in
    /// the top-`k` of phase `b` — a direct measure of how hard the drift
    /// is for a rebalancer.
    ///
    /// # Panics
    ///
    /// Panics if a phase index is out of range or `k == 0`.
    #[must_use]
    pub fn hot_overlap(&self, a: usize, b: usize, k: usize) -> f64 {
        assert!(k > 0, "k must be positive");
        let top = |phase: &Trace| {
            let mut counts = std::collections::HashMap::new();
            for op in phase {
                *counts.entry(op.target).or_insert(0u64) += 1;
            }
            let mut v: Vec<_> = counts.into_iter().collect();
            v.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
            v.into_iter()
                .take(k)
                .map(|(id, _)| id)
                .collect::<std::collections::HashSet<_>>()
        };
        let ta = top(&self.phases[a]);
        let tb = top(&self.phases[b]);
        ta.intersection(&tb).count() as f64 / k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_share_tree_and_split_ops() {
        let w = DriftingWorkload::generate(
            TraceProfile::lmbe().with_nodes(500).with_operations(9_000),
            3,
            5,
        );
        assert_eq!(w.phase_count(), 3);
        for phase in &w.phases {
            assert_eq!(phase.len(), 3_000);
            for op in phase {
                assert!(w.tree.contains(op.target));
            }
        }
    }

    #[test]
    fn hotspots_drift_between_phases() {
        // LMBE's hotness is mostly noise-ranked, so the hot set should
        // shift substantially between phases.
        let w = DriftingWorkload::generate(
            TraceProfile::lmbe()
                .with_nodes(2_000)
                .with_operations(40_000),
            2,
            9,
        );
        let self_overlap = w.hot_overlap(0, 0, 50);
        let cross_overlap = w.hot_overlap(0, 1, 50);
        assert_eq!(self_overlap, 1.0);
        assert!(
            cross_overlap < 0.9,
            "phases too similar: overlap {cross_overlap}"
        );
    }

    #[test]
    fn deep_bias_pins_more_of_the_hot_set() {
        let noisy = DriftingWorkload::generate(
            TraceProfile::lmbe()
                .with_nodes(2_000)
                .with_operations(40_000),
            2,
            11,
        );
        let pinned = DriftingWorkload::generate(
            TraceProfile::dtr()
                .with_nodes(2_000)
                .with_operations(40_000),
            2,
            11,
        );
        assert!(
            pinned.hot_overlap(0, 1, 30) >= noisy.hot_overlap(0, 1, 30),
            "depth-pinned DTR should drift less than noise-ranked LMBE"
        );
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn zero_phases_panics() {
        let _ = DriftingWorkload::generate(TraceProfile::dtr().with_nodes(200), 0, 1);
    }
}
