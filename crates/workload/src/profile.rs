//! Trace profiles: the published characteristics of DTR, LMBE and RA.

use serde::{Deserialize, Serialize};

/// Read/write/update fractions of a trace (Table II of the paper).
///
/// *Read* and *write* are plain metadata queries to the MDS cluster; an
/// *update* modifies metadata and therefore takes the global-layer lock when
/// its target is replicated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpMix {
    /// Fraction of read operations.
    pub read: f64,
    /// Fraction of write operations.
    pub write: f64,
    /// Fraction of update operations.
    pub update: f64,
}

impl OpMix {
    /// Builds a mix, validating that the fractions are non-negative and sum
    /// to 1 within floating-point tolerance.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is negative or the sum deviates from 1 by more
    /// than `1e-6`.
    #[must_use]
    pub fn new(read: f64, write: f64, update: f64) -> Self {
        assert!(
            read >= 0.0 && write >= 0.0 && update >= 0.0,
            "fractions must be non-negative"
        );
        let sum = read + write + update;
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "fractions must sum to 1, got {sum}"
        );
        OpMix {
            read,
            write,
            update,
        }
    }

    /// DTR operation breakdown (67.743% / 26.137% / 6.119%, renormalised).
    #[must_use]
    pub fn dtr() -> Self {
        Self::normalised(0.67743, 0.26137, 0.06119)
    }

    /// LMBE operation breakdown (78.877% / 21.108% / 0.015%).
    #[must_use]
    pub fn lmbe() -> Self {
        Self::normalised(0.78877, 0.21108, 0.00015)
    }

    /// RA operation breakdown (47.734% / 36.174% / 16.102%).
    #[must_use]
    pub fn ra() -> Self {
        Self::normalised(0.47734, 0.36174, 0.16102)
    }

    fn normalised(read: f64, write: f64, update: f64) -> Self {
        let sum = read + write + update;
        OpMix {
            read: read / sum,
            write: write / sum,
            update: update / sum,
        }
    }
}

/// Full description of a synthetic trace: namespace shape, access skew and
/// operation mix.
///
/// The presets [`dtr`](TraceProfile::dtr), [`lmbe`](TraceProfile::lmbe) and
/// [`ra`](TraceProfile::ra) carry the published values from Tables I–II plus
/// shape parameters tuned so the paper's measured layer hit-rates emerge
/// (see the crate docs). All knobs can be overridden with the `with_*`
/// builder methods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceProfile {
    /// Human-readable trace name ("DTR", "LMBE", "RA", or custom).
    pub name: String,
    /// Target number of live namespace nodes to synthesise.
    pub nodes: usize,
    /// Number of operations to generate.
    pub operations: usize,
    /// Maximum namespace depth (Table I: DTR 49, LMBE 9, RA 13).
    pub max_depth: usize,
    /// Fraction of non-root nodes that are directories.
    pub dir_ratio: f64,
    /// Depth attachment bias `γ`: a directory at depth `d` attracts new
    /// children with weight `γ^d`. `γ > 1` grows deep chains (DTR),
    /// `γ < 1` grows wide flat trees (LMBE).
    pub depth_gamma: f64,
    /// Zipf exponent of the per-node popularity distribution.
    pub zipf_exponent: f64,
    /// Zipf–Mandelbrot head-flattening shift `q` (weights `∝ 1/(k+q)^s`).
    ///
    /// Real traces concentrate a large share of accesses on the top *set*
    /// of nodes without any single node dominating; the shift reproduces
    /// that: the top-1% aggregate share is set by `s` while `q` keeps the
    /// rank-1 share realistic (a couple of percent at most).
    pub zipf_shift: f64,
    /// How strongly popularity concentrates on *shallow* nodes, in `[0, 1]`.
    ///
    /// Hotness ranks are assigned by sorting nodes by
    /// `shallow_bias · normalised_depth + (1 − shallow_bias) · noise`:
    /// at 1.0 the shallowest nodes take the top Zipf ranks (queries land in
    /// the global layer, like DTR); at 0.0 hotness is independent of depth
    /// (queries scatter into the local layer, like LMBE).
    pub shallow_bias: f64,
    /// Operation mix (Table II).
    pub op_mix: OpMix,
    /// Published record count of the original trace, for Table I reporting.
    pub paper_records: u64,
    /// Published on-disk size of the original trace in GB, for Table I.
    pub paper_size_gb: f64,
}

impl TraceProfile {
    /// *Development Tools Release*: deep tree (depth 49), read-heavy,
    /// strongly shallow-skewed accesses — the paper measures ≈83% of queries
    /// hitting a 1% global layer.
    #[must_use]
    pub fn dtr() -> Self {
        TraceProfile {
            name: "DTR".to_owned(),
            nodes: 200_000,
            operations: 2_000_000,
            max_depth: 49,
            dir_ratio: 0.35,
            depth_gamma: 1.0,
            zipf_exponent: 1.70,
            zipf_shift: 30.0,
            shallow_bias: 0.92,
            op_mix: OpMix::dtr(),
            paper_records: 34_349_109,
            paper_size_gb: 5.9,
        }
    }

    /// *Live Maps Back End*: shallow wide tree (depth 9), read-heavy but
    /// with hotness spread across deep files — the paper measures ≈58.6% of
    /// queries going to the local layer.
    #[must_use]
    pub fn lmbe() -> Self {
        TraceProfile {
            name: "LMBE".to_owned(),
            nodes: 200_000,
            operations: 2_000_000,
            max_depth: 9,
            dir_ratio: 0.18,
            depth_gamma: 0.75,
            zipf_exponent: 1.36,
            zipf_shift: 80.0,
            shallow_bias: 0.32,
            op_mix: OpMix::lmbe(),
            paper_records: 88_160_590,
            paper_size_gb: 15.1,
        }
    }

    /// *Radius Authentication*: medium tree (depth 13), update-heavy (16.1%
    /// updates, of which the paper measures ≈67% directed at the global
    /// layer).
    #[must_use]
    pub fn ra() -> Self {
        TraceProfile {
            name: "RA".to_owned(),
            nodes: 200_000,
            operations: 2_000_000,
            max_depth: 13,
            dir_ratio: 0.25,
            depth_gamma: 0.95,
            zipf_exponent: 1.52,
            zipf_shift: 50.0,
            shallow_bias: 0.73,
            op_mix: OpMix::ra(),
            paper_records: 259_915_851,
            paper_size_gb: 39.3,
        }
    }

    /// All three paper presets, in Table I order.
    #[must_use]
    pub fn paper_presets() -> Vec<TraceProfile> {
        vec![Self::dtr(), Self::lmbe(), Self::ra()]
    }

    /// Overrides the synthesised node count.
    #[must_use]
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Overrides the generated operation count.
    #[must_use]
    pub fn with_operations(mut self, operations: usize) -> Self {
        self.operations = operations;
        self
    }

    /// Overrides the Zipf exponent.
    #[must_use]
    pub fn with_zipf_exponent(mut self, s: f64) -> Self {
        self.zipf_exponent = s;
        self
    }

    /// Overrides the Zipf–Mandelbrot shift.
    #[must_use]
    pub fn with_zipf_shift(mut self, q: f64) -> Self {
        self.zipf_shift = q;
        self
    }

    /// Overrides the shallow bias.
    #[must_use]
    pub fn with_shallow_bias(mut self, bias: f64) -> Self {
        self.shallow_bias = bias;
        self
    }

    /// Overrides the operation mix.
    #[must_use]
    pub fn with_op_mix(mut self, mix: OpMix) -> Self {
        self.op_mix = mix;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_sum_to_one() {
        for mix in [OpMix::dtr(), OpMix::lmbe(), OpMix::ra()] {
            assert!((mix.read + mix.write + mix.update - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn table_two_values_match_paper() {
        let dtr = OpMix::dtr();
        assert!((dtr.read - 0.67743).abs() < 0.01);
        assert!((dtr.update - 0.06119).abs() < 0.01);
        let ra = OpMix::ra();
        assert!((ra.update - 0.16102).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_mix_panics() {
        let _ = OpMix::new(0.5, 0.5, 0.5);
    }

    #[test]
    fn presets_carry_table_one_depths() {
        assert_eq!(TraceProfile::dtr().max_depth, 49);
        assert_eq!(TraceProfile::lmbe().max_depth, 9);
        assert_eq!(TraceProfile::ra().max_depth, 13);
        assert_eq!(TraceProfile::paper_presets().len(), 3);
    }

    #[test]
    fn builder_overrides() {
        let p = TraceProfile::dtr()
            .with_nodes(10)
            .with_operations(20)
            .with_zipf_exponent(0.5);
        assert_eq!(p.nodes, 10);
        assert_eq!(p.operations, 20);
        assert_eq!(p.zipf_exponent, 0.5);
    }
}
