//! Implementation of the `d2tree` command-line tool.
//!
//! All command logic lives here (returning its output as a `String`) so
//! it is unit-testable; `main.rs` only forwards `std::env::args`.
//!
//! ```text
//! d2tree synth     --trace dtr --nodes 20000 --ops 100000 --seed 42 --out ws
//! d2tree stats     --tree ws.tree --trace ws.trace
//! d2tree partition --tree ws.tree --trace ws.trace --scheme d2tree --mds 8
//! d2tree replay    --tree ws.tree --trace ws.trace --scheme d2tree --mds 8
//! d2tree report    --tree ws.tree --trace ws.trace --scheme d2tree --mds 8
//! ```

#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use d2tree_baselines::{AngleCut, DropScheme, DynamicSubtree, HashMapping, StaticSubtree};
use d2tree_bench::{parallel_cells_with, thread_count};
use d2tree_cluster::{
    admin_get, analyze, parse_metrics_json, run_chaos, run_load, run_monitor_chaos,
    run_store_chaos, AdminConfig, AdminServer, ChaosConfig, FaultAction, FaultPlan, FaultRule,
    FaultScope, LoadConfig, LoadMode, LoadReport, MetricsDoc, MonitorChaosConfig, NetMds,
    NetServer, NetServerConfig, ReplayOutcome, RetryPolicy, SimConfig, Simulator, StoreChaosConfig,
    StrictChainRoute,
};
use d2tree_core::{D2TreeConfig, D2TreeScheme, LocalIndex, Partitioner};
use d2tree_metrics::{balance, ClusterSpec, MdsId, Placement};
use d2tree_namespace::{NamespaceTree, NodeId, NsPath};
use d2tree_store::{
    compact, inspect, verify, AttrState, MdsRecord, MdsState, MdsStore, StoreConfig, StoreError,
};
use d2tree_telemetry::trace::{chrome_trace_json, digest, Sampler, Tracer};
use d2tree_telemetry::{export, names, Registry};
use d2tree_workload::{io as trace_io, Trace, TraceProfile, TraceStats, WorkloadBuilder};

/// Errors surfaced to the user.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Wrong or missing arguments; the message explains usage.
    Usage(String),
    /// A file could not be read or written.
    Io(std::io::Error),
    /// A trace/namespace file was malformed.
    Format(trace_io::TraceIoError),
    /// A chaos run violated a recovery invariant or failed to reproduce.
    Chaos(String),
    /// A durable store could not be read, or its contents are corrupt.
    Store(StoreError),
    /// The trace analyzer found spans disagreeing with the paper's
    /// Def. 1 / Def. 3 predictions, or a structurally broken trace.
    Trace(String),
    /// A benchmark's cross-check failed or its `--check` speedup floor
    /// was not reached.
    Bench(String),
    /// A `health --check` run violated its health rules.
    Health(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Format(e) => write!(f, "bad input file: {e}"),
            CliError::Chaos(msg) => write!(f, "chaos run failed: {msg}"),
            CliError::Store(e) => write!(f, "store error: {e}"),
            CliError::Trace(msg) => write!(f, "trace check failed: {msg}"),
            CliError::Bench(msg) => write!(f, "bench failed: {msg}"),
            CliError::Health(msg) => write!(f, "health check failed: {msg}"),
        }
    }
}

impl From<StoreError> for CliError {
    fn from(e: StoreError) -> Self {
        CliError::Store(e)
    }
}

impl Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<trace_io::TraceIoError> for CliError {
    fn from(e: trace_io::TraceIoError) -> Self {
        CliError::Format(e)
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
d2tree — distributed double-layer namespace tree partitioning (ICDCS'18 reproduction)

USAGE:
    d2tree <COMMAND> [OPTIONS]

COMMANDS:
    synth      generate a synthetic namespace + trace to files
    stats      summarise a namespace + trace (Table I/II style)
    partition  partition a namespace and report locality/balance
    replay     replay a trace through the cluster simulator
    report     replay a trace and export telemetry (Prometheus text / JSON)
    trace      replay with per-op tracing: Chrome trace JSON + Def. 1/3 cross-check
    hotspots   list the hottest paths of a trace
    check      partition with D2-Tree and fsck the resulting state
    chaos      replay a seeded crash/partition schedule and check recovery
    health     flight-record a drifting replay: Def. 3/5 trajectory, anomaly
               flags, JSONL/CSV export; --check exits non-zero on violations
    store      inspect, verify, compact or bench a durable MDS store
    bench      hot-path microbenchmarks: interned resolve, memoised locate,
               serial-vs-parallel figure sweep
    serve      run one MDS as a real TCP daemon over the frame codec
    load       drive a running `serve` daemon over N TCP connections and
               report throughput + latency percentiles
    top        poll a running daemon's admin plane and render a refreshing
               ops/s + server latency + redirect-rate + health view
    help       show this message

Common options:
    --tree <file>    namespace file (from `synth`, `D|F <path>` lines)
    --trace <file>   trace file (from `synth`, `R|W|U <path>` lines)
    --scheme <name>  d2tree | static | dynamic | hash | drop | anglecut
    --mds <n>        cluster size (default 8)
    --gl <frac>      D2-Tree global-layer proportion (default 0.01)
    --seed <n>       RNG seed (default 42)

`synth` options:
    --profile <name>  dtr | lmbe | ra (default dtr)
    --nodes <n>       namespace size (default 20000)
    --ops <n>         trace length (default 100000)
    --out <prefix>    writes <prefix>.tree and <prefix>.trace

`replay` / `report` options:
    --metrics-out <file>  (replay) also write the telemetry snapshot as JSON
    --format <name>       (report) prometheus | json | both (default both)
    --events-out <file>   (report) also dump the event journal as JSON lines
    --fault-drop <p>      drop each client→MDS message with probability p
    --fault-dup <p>       duplicate each client→MDS message with probability p
    --fault-seed <n>      seed of the fault injector (default: --seed)

`trace` options (takes the common workspace/scheme options too):
    --sample <rate>  fraction of operations to trace, in [0, 1] (default 1.0)
    --out <file>     Chrome trace-event JSON path (default trace.json),
                     loadable in chrome://tracing and Perfetto
    --bench          measure tracing overhead instead: replays the same
                     synthetic workload with tracing off and at 0%/1%/100%
                     sampling ([--nodes <n>] [--ops <n>] [--reps <n>]) and
                     writes a JSON report (default results/BENCH_trace.json)
    --check-overhead <pct>  with --bench: error out if the 100%-sampling
                     overhead exceeds <pct> percent (0 = off, default)

`chaos` options (schedule is derived from --seed):
    --mds <n>         cluster size (default 4)
    --nodes <n>       namespace size (default 600)
    --ticks <n>       virtual ticks to run (default 400)
    --tick-ms <n>     virtual ms per tick (default 20)
    --kills <n>       crash-restart cycles (default 2)
    --partitions <n>  monitor-link partition windows (default 1)
    --store-crashes <n>  also run a WAL/torn-write store-chaos schedule
                         with this many crash-recover cycles (default 0 = off)
    --monitor-crashes <n>  also run a replicated-control-plane chaos schedule
                         that crash-restarts the Monitor leader this many
                         times (plus peer partitions and a forced split
                         vote), checking election safety, fencing-token
                         monotonicity and bounded failover (default 0 = off)

`health` options (all optional):
    --profile <name>  dtr | lmbe | ra (default lmbe; lmbe drifts hardest)
    --nodes <n>       namespace size (default 3000)
    --ops <n>         total operations (default 24000)
    --mds <n>         cluster size (default 8)
    --phases <n>      hot-set drift phases (default 4)
    --rounds <n>      replay/rebalance rounds = health ticks (default 12)
    --decay <x>       popularity decay between rounds (default 0.5)
    --seed <n>        RNG seed (default 42)
    --inject-imbalance  freeze the placement (static scheme, no adjustment)
                        so drift drives the cluster out of balance — the
                        trajectory should then violate the balance rule
    --check           exit non-zero if any post-warmup tick breaks a rule
    --min-balance <x>       Def. 5 floor after warm-up (default 1.0)
    --max-retry-rate <x>    retries-per-op ceiling (default 1.0)
    --max-fsync-p99-us <n>  WAL fsync p99 ceiling, 0 = off (default 0)
    --warmup <n>            ticks exempt from rules (default 1)
    --out <file>      write the trajectory as JSON lines
    --csv <file>      write the trajectory as CSV

`store` usage:
    d2tree store inspect <dir>   summarise snapshot, WAL segments and record mix
    d2tree store verify <dir>    CRC-scan the whole store; errors on corruption
    d2tree store compact <dir>   snapshot now and prune covered WAL segments
    d2tree store bench [--records <n>] [--seed <n>] [--out <file>]
                                 measure WAL append overhead vs an in-memory
                                 baseline plus recovery time; writes a JSON
                                 report (default BENCH_store.json)

`bench` usage:
    d2tree bench hotpath [--nodes <n>] [--ops <n>] [--reps <n>] [--seed <n>]
                         [--check <x>] [--out <file>]
                 compare the interned resolver and the memoised locate
                 against the legacy string-walk formulations they replaced,
                 time the memoised locate under interleaved index mutations
                 (wholesale vs per-subtree dirty-root invalidation),
                 then time a serial vs parallel figure sweep (thread count
                 from D2_THREADS, default: all cores); writes a JSON report
                 (default results/BENCH_hotpath.json) plus a repo-root copy
                 BENCH_hotpath.json; --check <x> errors unless both
                 microbench speedups reach <x>

`serve` / `load` options:
    Both commands derive the SAME cluster (tree, trace, placement, local
    index) from the shared workload flags, so they must be given identical
    values for: --profile (default dtr), --nodes (default 2000),
    --ops (default 10000), --seed (default 42), --gl (default 0.01),
    --mds (default 1; cluster size of the derivation).

    serve [--addr <ip:port>]   listen address (default 127.0.0.1:0)
          [--mds-id <k>]       which MDS of the derivation to serve (default 0)
          [--store-root <dir>] attach a durable WAL store at <dir>/mds-<k>
          [--duration-ms <n>]  serve this long then exit (default 0 = forever)
          [--port-file <file>] write the bound address (resolves port 0)
                               atomically once listening — start scripts and
                               CI poll this file instead of racing the bind
          [--sample <rate>]    trace-sample served requests at this rate,
                               parenting serve spans on the wire trailer
          [--admin-addr <ip:port>]  also serve the live admin plane here:
                               GET /metrics (Prometheus text), /metrics.json,
                               /health (flight-recorder rules → 200/503),
                               /trace?n=K (last K sealed spans, Chrome JSON),
                               /slow (slowest served requests)
          [--admin-port-file <file>]  write the bound admin address
                               atomically once listening (needs --admin-addr)
          [--admin-tick-ms <n>]  admin flight-recorder sampling period
                               (default 250)

    load  --addr <a,b,...>     comma-separated server addresses indexed by
                               owner MDS id (owners wrap modulo the list, so
                               one address absorbs a multi-MDS derivation)
          [--conns <n>]        concurrent connections (default 4)
          [--count <n>]        operations to issue (default: trace length)
          [--mode <m>]         closed | open | both (default closed)
          [--qps <x>]          open-loop aggregate target rate (default 2000)
          [--pipeline <l>]     comma-separated per-connection pipeline depths
                               (default 1); each mode runs once per depth and
                               depths > 1 report as e.g. closed_p8; the run
                               refuses to write a report if any section
                               completed zero operations
          [--timeout-ms <n>]   per-attempt socket timeout (default 2000)
          [--check-p99-us <n>] error unless every section's p99 stays under
                               <n> microseconds
          [--out <file>]       JSON report (default results/BENCH_net.json)
          [--admin-addr <ip:port>]  scrape the daemon's admin plane mid-run:
                               each mode runs once unscraped then once with a
                               --scrape-hz poller, and the JSON report gains
                               the server-observed latency histograms plus the
                               scrape-overhead ops/s delta per mode
          [--scrape-hz <x>]    mid-run scraper polling rate (default 1.0)

    top   --admin-addr <ip:port>  admin plane of a running daemon (the
                               address `serve --admin-addr` bound)
          [--refresh-ms <n>]   poll period (default 1000)
          [--iters <n>]        stop after n refreshes and return them as
                               text (default 0 = stream forever to stdout)
          [--timeout-ms <n>]   per-request socket timeout (default 2000)
";

/// Simple `--flag value` argument map.
#[derive(Debug, Default)]
struct Opts {
    pairs: Vec<(String, String)>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, CliError> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let key = flag
                .strip_prefix("--")
                .ok_or_else(|| CliError::Usage(format!("expected --flag, got {flag:?}")))?;
            let value = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("--{key} needs a value")))?;
            pairs.push((key.to_owned(), value.clone()));
        }
        Ok(Opts { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn required(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError::Usage(format!("missing required --{key}")))
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key} expects a number, got {v:?}"))),
        }
    }
}

fn profile_by_name(name: &str) -> Result<TraceProfile, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "dtr" => Ok(TraceProfile::dtr()),
        "lmbe" => Ok(TraceProfile::lmbe()),
        "ra" => Ok(TraceProfile::ra()),
        other => Err(CliError::Usage(format!(
            "unknown profile {other:?} (expected dtr, lmbe or ra)"
        ))),
    }
}

fn scheme_by_name(name: &str, gl: f64, seed: u64) -> Result<Box<dyn Partitioner>, CliError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "d2tree" => Box::new(D2TreeScheme::new(
            D2TreeConfig::by_proportion(gl).with_seed(seed),
        )),
        "static" => Box::new(StaticSubtree::new(seed)),
        "dynamic" => Box::new(DynamicSubtree::new(seed)),
        "hash" => Box::new(HashMapping::new(seed)),
        "drop" => Box::new(DropScheme::new(seed)),
        "anglecut" => Box::new(AngleCut::new(seed)),
        other => {
            return Err(CliError::Usage(format!(
            "unknown scheme {other:?} (expected d2tree, static, dynamic, hash, drop or anglecut)"
        )))
        }
    })
}

fn load_workspace(opts: &Opts) -> Result<(NamespaceTree, Trace), CliError> {
    let tree_path = opts.required("tree")?;
    let trace_path = opts.required("trace")?;
    let tree = trace_io::read_tree(BufReader::new(File::open(tree_path)?))?;
    let trace = trace_io::read_trace(BufReader::new(File::open(trace_path)?), &tree)?;
    Ok((tree, trace))
}

/// Runs one CLI invocation; `args` excludes the program name.
///
/// # Errors
///
/// Returns [`CliError`] for usage mistakes, I/O failures and malformed
/// input files.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError::Usage(USAGE.to_owned()));
    };
    match command.as_str() {
        "synth" => cmd_synth(&Opts::parse(rest)?),
        "stats" => cmd_stats(&Opts::parse(rest)?),
        "partition" => cmd_partition(&Opts::parse(rest)?),
        "replay" => cmd_replay(&Opts::parse(rest)?),
        "report" => cmd_report(&Opts::parse(rest)?),
        "trace" => cmd_trace(rest),
        "hotspots" => cmd_hotspots(&Opts::parse(rest)?),
        "check" => cmd_check(&Opts::parse(rest)?),
        "chaos" => cmd_chaos(&Opts::parse(rest)?),
        "health" => cmd_health(rest),
        "store" => cmd_store(rest),
        "bench" => cmd_bench(rest),
        "serve" => cmd_serve(&Opts::parse(rest)?),
        "load" => cmd_load(&Opts::parse(rest)?),
        "top" => cmd_top(&Opts::parse(rest)?),
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    }
}

fn cmd_synth(opts: &Opts) -> Result<String, CliError> {
    let profile = profile_by_name(opts.get("profile").unwrap_or("dtr"))?
        .with_nodes(opts.num("nodes", 20_000usize)?)
        .with_operations(opts.num("ops", 100_000usize)?);
    let seed = opts.num("seed", 42u64)?;
    let out = opts.required("out")?;

    let workload = WorkloadBuilder::new(profile).seed(seed).build();
    let tree_path = format!("{out}.tree");
    let trace_path = format!("{out}.trace");
    trace_io::write_tree(BufWriter::new(File::create(&tree_path)?), &workload.tree)?;
    trace_io::write_trace(
        BufWriter::new(File::create(&trace_path)?),
        &workload.trace,
        &workload.tree,
    )?;
    Ok(format!(
        "wrote {tree_path} ({} nodes, max depth {}) and {trace_path} ({} ops)\n",
        workload.tree.node_count(),
        workload.tree.max_depth(),
        workload.trace.len()
    ))
}

fn cmd_stats(opts: &Opts) -> Result<String, CliError> {
    let (tree, trace) = load_workspace(opts)?;
    let stats = TraceStats::measure("workspace", &trace, &tree);
    Ok(format!(
        "{stats}\n\
         directories: {}\nfiles: {}\nmean access depth: {:.2}\n",
        tree.directory_count(),
        tree.file_count(),
        stats.mean_access_depth
    ))
}

fn cmd_partition(opts: &Opts) -> Result<String, CliError> {
    let (tree, trace) = load_workspace(opts)?;
    let m = opts.num("mds", 8usize)?;
    let gl = opts.num("gl", 0.01f64)?;
    let seed = opts.num("seed", 42u64)?;
    let mut scheme = scheme_by_name(opts.required("scheme")?, gl, seed)?;

    let pop = trace.popularity(&tree);
    let cluster = ClusterSpec::homogeneous(m, pop.sum_individual().max(1.0) / m as f64);
    scheme.build(&tree, &pop, &cluster);

    let locality = scheme.locality(&tree, &pop);
    let loads = scheme.loads(&tree, &pop);
    let replicated = scheme.placement().replicated_count(&tree);
    let mut out = String::new();
    out.push_str(&format!("scheme: {}\n", scheme.name()));
    out.push_str(&format!("cluster: {m} MDSs\n"));
    out.push_str(&format!("replicated (global-layer) nodes: {replicated}\n"));
    out.push_str(&format!("locality (Def. 3): {:.6e}\n", locality.locality));
    out.push_str(&format!(
        "balance (Def. 5): {:.3}\n",
        balance(&loads, &cluster)
    ));
    out.push_str("per-MDS loads:");
    for l in &loads {
        out.push_str(&format!(" {l:.0}"));
    }
    out.push('\n');
    Ok(out)
}

/// Builds the optional fault plan requested by `--fault-*` flags.
fn fault_plan_from_opts(opts: &Opts, default_seed: u64) -> Result<Option<FaultPlan>, CliError> {
    let drop_p = opts.num("fault-drop", 0.0f64)?;
    let dup_p = opts.num("fault-dup", 0.0f64)?;
    if drop_p <= 0.0 && dup_p <= 0.0 {
        return Ok(None);
    }
    let mut plan = FaultPlan::new(opts.num("fault-seed", default_seed)?);
    if drop_p > 0.0 {
        plan = plan.with_rule(
            FaultRule::new(FaultScope::AllLinks, FaultAction::Drop).with_probability(drop_p),
        );
    }
    if dup_p > 0.0 {
        plan = plan.with_rule(
            FaultRule::new(FaultScope::AllLinks, FaultAction::Duplicate).with_probability(dup_p),
        );
    }
    Ok(Some(plan))
}

/// Builds a scheme from the CLI options and replays the trace through an
/// instrumented simulator, returning the scheme name, the outcome and the
/// telemetry registry the run filled in.
fn instrumented_replay(opts: &Opts) -> Result<(String, ReplayOutcome, Arc<Registry>), CliError> {
    let (tree, trace) = load_workspace(opts)?;
    let m = opts.num("mds", 8usize)?;
    let gl = opts.num("gl", 0.01f64)?;
    let seed = opts.num("seed", 42u64)?;
    let clients = opts.num("clients", 200usize)?;
    let mut scheme = scheme_by_name(opts.required("scheme")?, gl, seed)?;

    let pop = trace.popularity(&tree);
    let cluster = ClusterSpec::homogeneous(m, 1.0);
    scheme.build(&tree, &pop, &cluster);
    let registry = Arc::new(Registry::new());
    names::register_all(&registry);
    let mut sim = Simulator::new(SimConfig {
        clients,
        seed,
        ..SimConfig::default()
    })
    .with_registry(Arc::clone(&registry));
    if let Some(plan) = fault_plan_from_opts(opts, seed)? {
        sim = sim.with_faults(plan);
    }
    let out = sim.replay(&tree, &trace, scheme.as_ref());
    Ok((scheme.name().to_owned(), out, registry))
}

fn cmd_replay(opts: &Opts) -> Result<String, CliError> {
    let (name, out, registry) = instrumented_replay(opts)?;
    let mut text = format!(
        "scheme: {name}\ncompleted: {} ops in {:.3} virtual s\n\
         throughput: {:.0} ops/s\nmean latency: {:.1} µs\np99 latency: {:.1} µs\n\
         forwarding hops: {}\n",
        out.completed,
        out.sim_seconds,
        out.throughput,
        out.mean_latency_us,
        out.p99_latency_us,
        out.total_hops
    );
    if let Some(path) = opts.get("metrics-out") {
        std::fs::write(path, export::json(&registry.snapshot()))?;
        text.push_str(&format!("metrics written to {path}\n"));
    }
    Ok(text)
}

fn cmd_report(opts: &Opts) -> Result<String, CliError> {
    let format = opts.get("format").unwrap_or("both");
    let (name, out, registry) = instrumented_replay(opts)?;
    let snapshot = registry.snapshot();
    let mut text = format!(
        "# replay of {} ops under scheme {name} ({:.0} ops/s)\n",
        out.completed, out.throughput
    );
    match format {
        "prometheus" => text.push_str(&export::prometheus_text(&snapshot)),
        "json" => text.push_str(&export::json(&snapshot)),
        "both" => {
            text.push_str("==> prometheus <==\n");
            text.push_str(&export::prometheus_text(&snapshot));
            text.push_str("==> json <==\n");
            text.push_str(&export::json(&snapshot));
            text.push('\n');
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --format {other:?} (expected prometheus, json or both)"
            )))
        }
    }
    if let Some(path) = opts.get("events-out") {
        std::fs::write(path, export::events_jsonl(&snapshot))?;
        text.push_str(&format!(
            "{} journal event(s) written to {path}\n",
            snapshot.events.len()
        ));
    }
    Ok(text)
}

/// Entry point of `d2tree trace`: peels the valueless `--bench` flag off
/// before the `--flag value` parser sees it, then dispatches.
fn cmd_trace(rest: &[String]) -> Result<String, CliError> {
    let bench = rest.iter().any(|a| a == "--bench");
    let filtered: Vec<String> = rest.iter().filter(|a| *a != "--bench").cloned().collect();
    let opts = Opts::parse(&filtered)?;
    if bench {
        cmd_trace_bench(&opts)
    } else {
        cmd_trace_replay(&opts)
    }
}

/// Replays a workspace with distributed tracing on, cross-checks the
/// observed spans against Def. 1 (`path_jumps`) and Def. 3 (locality)
/// — any disagreement is a hard error — and writes the spans as a
/// Chrome trace-event JSON file.
fn cmd_trace_replay(opts: &Opts) -> Result<String, CliError> {
    let (tree, trace) = load_workspace(opts)?;
    let m = opts.num("mds", 8usize)?;
    let gl = opts.num("gl", 0.01f64)?;
    let seed = opts.num("seed", 42u64)?;
    let clients = opts.num("clients", 200usize)?;
    let rate = opts.num("sample", 1.0f64)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(CliError::Usage(format!(
            "--sample expects a rate in [0, 1], got {rate}"
        )));
    }
    let out_path = opts.get("out").unwrap_or("trace.json").to_owned();
    let mut scheme = scheme_by_name(opts.required("scheme")?, gl, seed)?;

    let pop = trace.popularity(&tree);
    let cluster = ClusterSpec::homogeneous(m, 1.0);
    scheme.build(&tree, &pop, &cluster);

    let registry = Arc::new(Registry::new());
    names::register_all(&registry);
    let tracer = Arc::new(Tracer::new(Sampler::new(seed, rate)));
    // The strict router walks the full forwarding chain on every query,
    // so the serve spans are comparable with Def. 1 hop by hop.
    let strict = StrictChainRoute(scheme.as_ref());
    let mut sim = Simulator::new(SimConfig {
        clients,
        seed,
        ..SimConfig::default()
    })
    .with_registry(Arc::clone(&registry))
    .with_tracer(Arc::clone(&tracer));
    if let Some(plan) = fault_plan_from_opts(opts, seed)? {
        sim = sim.with_faults(plan);
    }
    let out = sim.replay(&tree, &trace, &strict);

    let spans = tracer.drain();
    let analysis = analyze(&spans, &tree, scheme.placement(), &pop)
        .map_err(|e| CliError::Trace(e.to_string()))?;
    let span_digest = digest(&spans);
    std::fs::write(&out_path, chrome_trace_json(&spans))?;

    let mut text = format!(
        "traced replay: scheme {}, {} ops, sampling {:.4}%\n\
         spans: {} recorded, {} shed; digest {span_digest:016x}\n\
         ops traced: {}  mean observed hops: {:.4}\n\
         Def. 1: span-derived hops == path_jumps for every sampled op\n\
         Def. 3: observed locality {:.6e} == analytic {:.6e} (f64 tolerance)\n",
        scheme.name(),
        out.completed,
        rate * 100.0,
        tracer.sink().recorded(),
        tracer.sink().dropped(),
        analysis.ops.len(),
        analysis.mean_observed_hops,
        analysis.observed_locality.locality,
        analysis.analytic_locality.locality,
    );
    if analysis.faults.is_empty() {
        text.push_str("injected faults observed: none\n");
    } else {
        text.push_str("injected faults observed (latency attributed to the faulted hop):\n");
        for (kind, att) in &analysis.faults {
            text.push_str(&format!(
                "  {}: {} span(s), {} µs total across {} MDS lane(s)\n",
                kind.label(),
                att.count,
                att.total_us,
                att.per_mds.len()
            ));
        }
    }
    text.push_str(&format!(
        "chrome trace written to {out_path} (open in chrome://tracing or Perfetto)\n"
    ));
    Ok(text)
}

/// `d2tree trace --bench`: replays one synthetic workload with tracing
/// off, then at 0%, 1% and 100% sampling, and reports the overhead of
/// each against the untraced baseline (best of `--reps` runs each).
fn cmd_trace_bench(opts: &Opts) -> Result<String, CliError> {
    let nodes = opts.num("nodes", 4_000usize)?;
    let ops = opts.num("ops", 30_000usize)?;
    let seed = opts.num("seed", 42u64)?;
    let reps = opts.num("reps", 3usize)?.max(1);
    let clients = opts.num("clients", 64usize)?;
    let out_path = opts
        .get("out")
        .unwrap_or("results/BENCH_trace.json")
        .to_owned();

    let workload = WorkloadBuilder::new(TraceProfile::dtr().with_nodes(nodes).with_operations(ops))
        .seed(seed)
        .build();
    let pop = workload.popularity();
    let mut scheme = D2TreeScheme::new(D2TreeConfig::by_proportion(0.01).with_seed(seed));
    scheme.build(&workload.tree, &pop, &ClusterSpec::homogeneous(8, 1.0));

    // Untimed warmup so the first timed config (the untraced baseline)
    // does not pay the cold-cache penalty for everyone else.
    let _ = Simulator::new(SimConfig {
        clients,
        seed,
        ..SimConfig::default()
    })
    .replay(&workload.tree, &workload.trace, &scheme);

    // (label, sampling rate; None = tracing compiled out of the run
    // entirely, i.e. the simulator's tracer Option stays None).
    let configs: [(&str, Option<f64>); 4] = [
        ("off", None),
        ("0%", Some(0.0)),
        ("1%", Some(0.01)),
        ("100%", Some(1.0)),
    ];
    // Interleave the configurations across reps (rather than running
    // each config's reps back to back) so slow drift of the host does
    // not bias whichever config happens to run last; keep the best rep
    // per config.
    let mut runs: Vec<(&str, Option<f64>, u64, u64)> = configs
        .iter()
        .map(|&(label, rate)| (label, rate, u64::MAX, 0u64))
        .collect();
    for _ in 0..reps {
        for run in &mut runs {
            let tracer = run.1.map(|r| Arc::new(Tracer::new(Sampler::new(seed, r))));
            let mut sim = Simulator::new(SimConfig {
                clients,
                seed,
                ..SimConfig::default()
            });
            if let Some(t) = &tracer {
                sim = sim.with_tracer(Arc::clone(t));
            }
            let start = std::time::Instant::now();
            let out = sim.replay(&workload.tree, &workload.trace, &scheme);
            run.2 = run.2.min(start.elapsed().as_nanos() as u64);
            if out.completed != ops {
                return Err(CliError::Trace(format!(
                    "bench replay completed {} of {ops} ops",
                    out.completed
                )));
            }
            run.3 = tracer.as_ref().map_or(0, |t| t.sink().len() as u64);
        }
    }

    let baseline_ns = runs[0].2.max(1);
    let overhead_pct = |ns: u64| (ns as f64 - baseline_ns as f64) / baseline_ns as f64 * 100.0;

    let mut json = format!(
        "{{\n  \"nodes\": {nodes},\n  \"ops\": {ops},\n  \"seed\": {seed},\n  \
         \"reps\": {reps},\n  \"clients\": {clients},\n  \
         \"baseline_ns\": {baseline_ns},\n  \
         \"baseline_ns_per_op\": {},\n  \"rates\": [\n",
        baseline_ns / ops as u64
    );
    for (i, &(label, rate, ns, spans)) in runs.iter().enumerate().skip(1) {
        json.push_str(&format!(
            "    {{\"label\": \"{label}\", \"rate\": {}, \"ns\": {ns}, \
             \"ns_per_op\": {}, \"overhead_pct\": {:.2}, \"spans\": {spans}}}{}\n",
            rate.unwrap_or(0.0),
            ns / ops as u64,
            overhead_pct(ns),
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&out_path, &json)?;

    let mut text = format!(
        "trace bench: {ops} ops over {nodes} nodes, best of {reps} rep(s)\n\
         tracing off: {} ns/op\n",
        baseline_ns / ops as u64
    );
    for &(label, _, ns, spans) in runs.iter().skip(1) {
        text.push_str(&format!(
            "  sampling {label}: {} ns/op ({:+.1}% vs off, {spans} span(s))\n",
            ns / ops as u64,
            overhead_pct(ns)
        ));
    }
    text.push_str(&format!("report written to {out_path}\n"));

    // `--check-overhead <pct>`: CI gate on the cost of full tracing.
    // 0 (the default) disables the check; otherwise the 100%-sampling
    // run must stay within <pct>% of the untraced baseline.
    let budget = opts.num("check-overhead", 0.0f64)?;
    if budget > 0.0 {
        let full = runs.last().expect("configs is non-empty");
        let measured = overhead_pct(full.2);
        if measured > budget {
            return Err(CliError::Trace(format!(
                "100% sampling overhead {measured:+.1}% exceeds the \
                 --check-overhead budget of {budget}%\n\n{text}"
            )));
        }
        text.push_str(&format!(
            "overhead check: {measured:+.1}% at 100% sampling within budget {budget}%\n"
        ));
    }
    Ok(text)
}

fn cmd_hotspots(opts: &Opts) -> Result<String, CliError> {
    let (tree, trace) = load_workspace(opts)?;
    let top = opts.num("top", 15usize)?;
    let mut counts = std::collections::HashMap::new();
    for op in &trace {
        *counts.entry(op.target).or_insert(0u64) += 1;
    }
    let mut ranked: Vec<_> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(top);
    let total = trace.len().max(1) as f64;
    let mut out = format!("top {} targets of {} ops:\n", ranked.len(), trace.len());
    for (id, count) in ranked {
        out.push_str(&format!(
            "{count:>10}  {:>6.2}%  {}\n",
            100.0 * count as f64 / total,
            tree.path_of(id)
        ));
    }
    Ok(out)
}

fn cmd_check(opts: &Opts) -> Result<String, CliError> {
    let (tree, trace) = load_workspace(opts)?;
    let m = opts.num("mds", 8usize)?;
    let gl = opts.num("gl", 0.01f64)?;
    let seed = opts.num("seed", 42u64)?;
    let rounds = opts.num("rounds", 5usize)?;

    let pop = trace.popularity(&tree);
    let cluster = ClusterSpec::homogeneous(m, pop.sum_individual().max(1.0) / m as f64);
    let mut scheme = D2TreeScheme::new(D2TreeConfig::by_proportion(gl).with_seed(seed));
    scheme.build(&tree, &pop, &cluster);
    for _ in 0..rounds {
        let _ = scheme.rebalance(&tree, &pop, &cluster);
    }
    let violations = d2tree_core::check_d2tree(
        &tree,
        scheme.placement(),
        scheme.global_layer(),
        scheme.local_index(),
    );
    if violations.is_empty() {
        Ok(format!(
            "OK: {} nodes, {} global-layer, {} subtrees, {} rebalance rounds — no violations\n",
            tree.node_count(),
            scheme.global_layer().len(),
            scheme.subtrees().count(),
            rounds
        ))
    } else {
        let mut out = format!("{} violations:\n", violations.len());
        for v in violations.iter().take(50) {
            out.push_str(&format!("  {v}\n"));
        }
        Err(CliError::Usage(out))
    }
}

fn cmd_chaos(opts: &Opts) -> Result<String, CliError> {
    let seed = opts.num("seed", 42u64)?;
    let defaults = ChaosConfig::default();
    let config = ChaosConfig {
        mds: opts.num("mds", defaults.mds)?,
        nodes: opts.num("nodes", defaults.nodes)?,
        ticks: opts.num("ticks", defaults.ticks)?,
        tick_ms: opts.num("tick-ms", defaults.tick_ms)?,
        kills: opts.num("kills", defaults.kills)?,
        partitions: opts.num("partitions", defaults.partitions)?,
    };
    if config.mds < 2 {
        return Err(CliError::Usage("--mds must be at least 2".to_owned()));
    }
    let report = run_chaos(seed, &config);
    let replayed = run_chaos(seed, &config);
    if report != replayed {
        return Err(CliError::Chaos(format!(
            "seed {seed} did not reproduce: two runs produced different reports"
        )));
    }
    if !report.violations.is_empty() {
        let mut msg = format!(
            "seed {seed}: {} invariant violation(s):\n",
            report.violations.len()
        );
        for v in report.violations.iter().take(20) {
            msg.push_str(&format!("  {v}\n"));
        }
        return Err(CliError::Chaos(msg));
    }
    let mut out = format!(
        "chaos seed {seed}: {} MDSs, {} ticks x {} ms\n\
         kills: {}  restarts: {}  partitions: {}\n\
         rejoins: {} ({} reclaimed at least one subtree)\n\
         faults injected: {} dropped, {} delayed, {} duplicated\n\
         GL updates blocked by crashed lock holder: {}\n\
         journal: {} events, identical across two runs\n\
         invariants: all clean (every subtree exactly one live owner, GL converged)\n",
        config.mds,
        report.ticks,
        config.tick_ms,
        report.kills,
        report.restarts,
        report.partitions,
        report.rejoins,
        report.rejoins_with_claims,
        report.faults_dropped,
        report.faults_delayed,
        report.faults_duplicated,
        report.blocked_updates,
        report.journal.len(),
    );

    let store_crashes = opts.num("store-crashes", 0usize)?;
    if store_crashes > 0 {
        let store_config = StoreChaosConfig {
            crashes: store_crashes,
            ..StoreChaosConfig::default()
        };
        let store_report = run_store_chaos(seed, &store_config);
        if store_report != run_store_chaos(seed, &store_config) {
            return Err(CliError::Chaos(format!(
                "store seed {seed} did not reproduce: two runs produced different reports"
            )));
        }
        if !store_report.violations.is_empty() {
            let mut msg = format!(
                "store seed {seed}: {} recovery-contract violation(s):\n",
                store_report.violations.len()
            );
            for v in store_report.violations.iter().take(20) {
                msg.push_str(&format!("  {v}\n"));
            }
            return Err(CliError::Chaos(msg));
        }
        out.push_str(&format!(
            "store chaos: {} crashes — {} left torn tails, {} under lying fsyncs, {} fail-loud\n\
             store records: {} appended, {} unsynced lost; {} syncs, {} snapshots\n\
             corruption probes: {} injected, {} detected\n\
             store invariants: all clean (recovery always an exact journaled prefix)\n",
            store_report.crashes,
            store_report.torn_crashes,
            store_report.partial_fsyncs,
            store_report.loud_failures,
            store_report.records_appended,
            store_report.records_lost,
            store_report.syncs,
            store_report.snapshots,
            store_report.corrupt_probes,
            store_report.corruptions_detected,
        ));
    }

    let monitor_crashes = opts.num("monitor-crashes", 0usize)?;
    if monitor_crashes > 0 {
        let monitor_config = MonitorChaosConfig {
            monitor_kills: monitor_crashes,
            ..MonitorChaosConfig::default()
        };
        let monitor_report = run_monitor_chaos(seed, &monitor_config);
        if monitor_report != run_monitor_chaos(seed, &monitor_config) {
            return Err(CliError::Chaos(format!(
                "monitor seed {seed} did not reproduce: two runs produced different reports"
            )));
        }
        if !monitor_report.violations.is_empty() {
            let mut msg = format!(
                "monitor seed {seed}: {} control-plane violation(s):\n",
                monitor_report.violations.len()
            );
            for v in monitor_report.violations.iter().take(20) {
                msg.push_str(&format!("  {v}\n"));
            }
            return Err(CliError::Chaos(msg));
        }
        out.push_str(&format!(
            "monitor chaos: {} leader crashes, {} restarts; {} elections, {} leader changes\n\
             replicated log: {} commits — {} grants, {} GL writes, {} migrations\n\
             fencing: {} rejections ({} deliberate expired-fence probes confirmed)\n\
             client: {} control-plane retries, {} writes blocked leaderless\n\
             worst failover: {} virtual ms; journal: {} events, identical across two runs\n\
             control-plane invariants: all clean (one leader per term, logs match, fences monotonic)\n",
            monitor_report.monitor_kills,
            monitor_report.monitor_restarts,
            monitor_report.elections,
            monitor_report.leader_changes,
            monitor_report.commits,
            monitor_report.grants,
            monitor_report.gl_writes,
            monitor_report.migrations_committed,
            monitor_report.fence_rejections,
            monitor_report.stale_probes_confirmed,
            monitor_report.monitor_retries,
            monitor_report.blocked_writes,
            monitor_report.max_failover_ms,
            monitor_report.journal.len(),
        ));
    }
    Ok(out)
}

/// Dispatches `d2tree store <action> …`: the first operand is the
/// action, `inspect`/`verify`/`compact` then take a positional store
/// directory, `bench` takes `--flag value` options.
/// `d2tree health`: replays a drifting workload round by round with the
/// flight recorder on, renders the Def. 3 locality / Def. 5 balance
/// trajectory plus per-tick operational signals, and (with `--check`)
/// fails on violated health rules. `--inject-imbalance` swaps the
/// adaptive D2-Tree scheme for a frozen static placement, so the
/// drifting hot set drives the cluster out of balance — the scenario
/// the balance rule exists to catch.
#[allow(clippy::cast_precision_loss, clippy::too_many_lines)]
fn cmd_health(rest: &[String]) -> Result<String, CliError> {
    let check = rest.iter().any(|a| a == "--check");
    let inject = rest.iter().any(|a| a == "--inject-imbalance");
    let filtered: Vec<String> = rest
        .iter()
        .filter(|a| *a != "--check" && *a != "--inject-imbalance")
        .cloned()
        .collect();
    let opts = Opts::parse(&filtered)?;
    let profile = profile_by_name(opts.get("profile").unwrap_or("lmbe"))?
        .with_nodes(opts.num("nodes", 3_000usize)?)
        .with_operations(opts.num("ops", 24_000usize)?);
    let m = opts.num("mds", 8usize)?;
    let gl = opts.num("gl", 0.01f64)?;
    let seed = opts.num("seed", 42u64)?;
    let phases = opts.num("phases", 4usize)?;
    let rounds = opts.num("rounds", 12usize)?;
    let decay = opts.num("decay", 0.5f64)?;
    let clients = opts.num("clients", 200usize)?;
    let rules = d2tree_telemetry::HealthRules {
        min_balance: opts.num("min-balance", 1.0f64)?,
        max_retry_rate: opts.num("max-retry-rate", 1.0f64)?,
        max_fsync_p99_us: opts.num("max-fsync-p99-us", 0u64)?,
        warmup_ticks: opts.num("warmup", 1u64)?,
    };
    if rounds == 0 || phases == 0 {
        return Err(CliError::Usage(
            "--rounds and --phases must be positive".to_owned(),
        ));
    }

    let drift = d2tree_workload::DriftingWorkload::generate(profile, phases, seed);
    let overlap = if phases > 1 {
        drift.hot_overlap(0, phases - 1, 50)
    } else {
        1.0
    };
    let full = Trace::from_ops(
        drift
            .phases
            .iter()
            .flat_map(|t| t.ops().iter().copied())
            .collect(),
    );

    // The initial placement only sees phase 0's popularity; later phases
    // are exactly the drift the adjustment loop (or, injected, the lack
    // of one) has to deal with.
    let pop0 = drift.phases[0].popularity(&drift.tree);
    let cluster = ClusterSpec::homogeneous(m, pop0.sum_individual().max(1.0) / m as f64);
    let mut scheme = scheme_by_name(if inject { "static" } else { "d2tree" }, gl, seed)?;
    scheme.build(&drift.tree, &pop0, &cluster);

    let registry = Arc::new(Registry::new());
    names::register_all(&registry);
    let mut recorder = d2tree_telemetry::FlightRecorder::new(rounds);
    let sim = Simulator::new(SimConfig {
        clients,
        seed,
        ..SimConfig::default()
    })
    .with_registry(Arc::clone(&registry));
    let out = sim.replay_with_rebalance_recorded(
        &drift.tree,
        &full,
        scheme.as_mut(),
        &cluster,
        rounds,
        decay,
        Some(&mut recorder),
    );

    let violations = rules.check(recorder.ticks());
    registry
        .counter(d2tree_telemetry::MetricKey::global(
            names::HEALTH_VIOLATIONS_TOTAL,
        ))
        .add(violations.len() as u64);
    if let Some(path) = opts.get("out") {
        std::fs::write(path, recorder.to_jsonl())?;
    }
    if let Some(path) = opts.get("csv") {
        std::fs::write(path, recorder.to_csv())?;
    }

    let fmt_score = |v: f64| -> String {
        if v.is_nan() {
            "-".to_owned()
        } else if v.is_infinite() {
            "inf".to_owned()
        } else if v != 0.0 && v.abs() < 0.01 {
            format!("{v:.3e}")
        } else {
            format!("{v:.3}")
        }
    };
    let max_balance = recorder
        .ticks()
        .map(|t| t.balance)
        .filter(|b| b.is_finite())
        .fold(0.0f64, f64::max);
    let mut text = format!(
        "health: scheme {} ({}), {} MDS, {} phase(s) × {} ops, {} round(s)\n\
         drift hardness: top-50 hot-set overlap phase 0 → {} = {:.2}\n\
         overall: {} ops, throughput {:.0} op/s, mean latency {:.1} µs\n\n\
         tick  balance     locality    ops     retry  migr  fault  shed  fsyncp99  balance bar\n",
        scheme.name(),
        if inject {
            "frozen placement: imbalance injected"
        } else {
            "adaptive"
        },
        m,
        phases,
        full.len() / phases,
        rounds,
        phases - 1,
        overlap,
        out.overall.completed,
        out.overall.throughput,
        out.overall.mean_latency_us,
    );
    for t in recorder.ticks() {
        let bar_len = if t.balance.is_infinite() {
            24
        } else if max_balance > 0.0 {
            ((t.balance / max_balance) * 24.0).round() as usize
        } else {
            0
        };
        text.push_str(&format!(
            "{:>4}  {:>10}  {:>10}  {:>6}  {:>5}  {:>4}  {:>5}  {:>4}  {:>8}  {}\n",
            t.tick,
            fmt_score(t.balance),
            fmt_score(t.locality),
            t.ops,
            t.retries,
            t.migrations,
            t.faults,
            t.spans_dropped,
            t.wal_fsync_p99_us,
            "#".repeat(bar_len.min(24)),
        ));
    }
    text.push_str(&format!(
        "\nrules: balance ≥ {}, retry rate ≤ {}, {}, warm-up {} tick(s)\n",
        rules.min_balance,
        rules.max_retry_rate,
        if rules.max_fsync_p99_us == 0 {
            "fsync p99 unchecked".to_owned()
        } else {
            format!("fsync p99 ≤ {} µs", rules.max_fsync_p99_us)
        },
        rules.warmup_ticks,
    ));
    if violations.is_empty() {
        text.push_str("health: OK — no rule violated after warm-up\n");
    } else {
        text.push_str(&format!("violations ({}):\n", violations.len()));
        for v in &violations {
            text.push_str(&format!("  {v}\n"));
        }
    }
    if check && !violations.is_empty() {
        return Err(CliError::Health(format!(
            "{} rule violation(s); first: {}\n\n{text}",
            violations.len(),
            violations[0]
        )));
    }
    Ok(text)
}

fn cmd_store(rest: &[String]) -> Result<String, CliError> {
    let Some((action, rest)) = rest.split_first() else {
        return Err(CliError::Usage(
            "store needs an action: inspect | verify | compact | bench".to_owned(),
        ));
    };
    if action == "bench" {
        return cmd_store_bench(&Opts::parse(rest)?);
    }
    let Some((dir, _)) = rest.split_first() else {
        return Err(CliError::Usage(format!("store {action} needs a <dir>")));
    };
    match action.as_str() {
        "inspect" => cmd_store_inspect(dir),
        "verify" => cmd_store_verify(dir),
        "compact" => cmd_store_compact(dir),
        other => Err(CliError::Usage(format!(
            "unknown store action {other:?} (expected inspect, verify, compact or bench)"
        ))),
    }
}

fn cmd_store_inspect(dir: &str) -> Result<String, CliError> {
    let report = inspect(dir)?;
    let mut out = format!(
        "store {dir}\n\
         snapshot lsn: {}\nnext lsn: {}\ntorn tail bytes: {}\n",
        report.snapshot_lsn, report.next_lsn, report.torn_bytes
    );
    out.push_str(&format!("segments: {}\n", report.segments.len()));
    for seg in &report.segments {
        out.push_str(&format!(
            "  wal-{:016x}.log  {} frames, {} valid bytes\n",
            seg.first_lsn, seg.frames, seg.valid_bytes
        ));
    }
    out.push_str("replayed records:");
    if report.record_counts.is_empty() {
        out.push_str(" none");
    }
    for (label, n) in &report.record_counts {
        out.push_str(&format!(" {label}={n}"));
    }
    out.push('\n');
    out.push_str(&format!(
        "state: gl_version {}, {} owned subtrees, {} attrs, {} popularity counters\n",
        report.gl_version, report.owned, report.attrs, report.popularity
    ));
    Ok(out)
}

fn cmd_store_verify(dir: &str) -> Result<String, CliError> {
    let report = verify(dir)?;
    Ok(format!(
        "OK: {dir}\n\
         {} records across {} segments verify (snapshot lsn {}, next lsn {})\n\
         torn tail bytes that recovery would truncate: {}\n",
        report.records, report.segments, report.snapshot_lsn, report.next_lsn, report.torn_bytes
    ))
}

fn cmd_store_compact(dir: &str) -> Result<String, CliError> {
    let (lsn, removed) = compact(dir, StoreConfig::default())?;
    Ok(format!(
        "compacted {dir}: snapshot at lsn {lsn}, {removed} covered segment(s) pruned\n"
    ))
}

/// A tiny deterministic generator (splitmix64) so the bench does not
/// need an RNG dependency and two runs write comparable reports.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn bench_record(rng: &mut SplitMix) -> MdsRecord {
    match rng.next() % 4 {
        0 => MdsRecord::AttrCommit {
            node: rng.next() % 4096,
            gl: rng.next().is_multiple_of(8),
            attr: AttrState {
                version: rng.next() % 100_000,
                mode: 0o644,
                uid: (rng.next() % 64) as u32,
                gid: (rng.next() % 64) as u32,
                size: rng.next() % (1 << 30),
                mtime: rng.next() % (1 << 40),
            },
        },
        1 => MdsRecord::Ownership {
            root: rng.next() % 512,
            acquired: rng.next().is_multiple_of(2),
        },
        2 => MdsRecord::GlRecut {
            version: rng.next() % 100_000,
            promoted: rng.next() % 32,
            demoted: rng.next() % 32,
        },
        _ => MdsRecord::Popularity {
            root: rng.next() % 512,
            bits: f64::from((rng.next() % (1 << 20)) as u32).to_bits(),
        },
    }
}

fn cmd_store_bench(opts: &Opts) -> Result<String, CliError> {
    let records = opts.num("records", 50_000u64)?;
    let seed = opts.num("seed", 42u64)?;
    let out_path = opts.get("out").unwrap_or("BENCH_store.json").to_owned();
    if records == 0 {
        return Err(CliError::Usage("--records must be positive".to_owned()));
    }

    let workload: Vec<MdsRecord> = {
        let mut rng = SplitMix(seed);
        (0..records).map(|_| bench_record(&mut rng)).collect()
    };

    // Baseline: the same records applied to a purely in-memory state.
    let baseline_start = std::time::Instant::now();
    let mut baseline = MdsState::default();
    for record in &workload {
        baseline.apply(record);
    }
    let baseline_ns = baseline_start.elapsed().as_nanos() as u64;

    // Durable run: group-committed WAL with the default policy
    // (periodic fsync + automatic snapshots).
    let dir = std::env::temp_dir().join(format!("d2tree-storebench-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Arc::new(Registry::new());
    let (store, _) = MdsStore::open(&dir, StoreConfig::default())?;
    let mut store = store.with_registry(&registry, 0);
    let wal_start = std::time::Instant::now();
    for record in &workload {
        store.append(*record)?;
    }
    store.sync()?;
    let wal_ns = wal_start.elapsed().as_nanos() as u64;
    if *store.state() != baseline {
        return Err(CliError::Chaos(
            "store bench: durable state diverged from the in-memory baseline".to_owned(),
        ));
    }
    drop(store);

    // Recovery: reopen from disk and time the replay.
    let (recovered, info) = MdsStore::open(&dir, StoreConfig::default())?;
    let recovered_matches = *recovered.state() == baseline;
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
    if !recovered_matches {
        return Err(CliError::Chaos(
            "store bench: recovered state diverged from the in-memory baseline".to_owned(),
        ));
    }

    let snap = registry.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(k, _)| k.name == name)
            .map_or(0, |&(_, v)| v)
    };
    let wal_bytes = counter(names::WAL_BYTES_TOTAL);
    let snapshots = counter(names::SNAPSHOTS_TOTAL);
    let baseline_ns_per_record = baseline_ns / records;
    let wal_ns_per_record = wal_ns / records;
    let overhead = wal_ns as f64 / baseline_ns.max(1) as f64;
    let recovery_us = info.duration.as_micros() as u64;

    let json = format!(
        "{{\n  \"records\": {records},\n  \"seed\": {seed},\n  \
         \"baseline_ns_per_record\": {baseline_ns_per_record},\n  \
         \"wal_ns_per_record\": {wal_ns_per_record},\n  \
         \"wal_overhead_x\": {overhead:.2},\n  \
         \"wal_bytes\": {wal_bytes},\n  \"snapshots\": {snapshots},\n  \
         \"recovery_us\": {recovery_us},\n  \
         \"recovery_records_replayed\": {},\n  \
         \"recovery_snapshot_lsn\": {},\n  \"recovery_next_lsn\": {}\n}}\n",
        info.records_replayed, info.snapshot_lsn, info.next_lsn
    );
    std::fs::write(&out_path, &json)?;

    Ok(format!(
        "store bench: {records} records\n\
         in-memory apply: {baseline_ns_per_record} ns/record\n\
         WAL append (group commit + snapshots): {wal_ns_per_record} ns/record ({overhead:.1}x)\n\
         WAL bytes: {wal_bytes}  snapshots: {snapshots}\n\
         recovery: {recovery_us} µs to replay {} records on a {}-record snapshot\n\
         recovered state matches the in-memory baseline\n\
         report written to {out_path}\n",
        info.records_replayed, info.snapshot_lsn
    ))
}

fn cmd_bench(rest: &[String]) -> Result<String, CliError> {
    let Some((action, rest)) = rest.split_first() else {
        return Err(CliError::Usage("bench needs an action: hotpath".to_owned()));
    };
    match action.as_str() {
        "hotpath" => cmd_bench_hotpath(&Opts::parse(rest)?),
        other => Err(CliError::Usage(format!(
            "unknown bench action {other:?} (expected hotpath)"
        ))),
    }
}

/// Times `reps` runs of `f`, returning the best (minimum) wall-clock in
/// nanoseconds together with `f`'s final checksum so the work cannot be
/// optimised away and runs can be cross-checked against each other.
fn best_ns<F: FnMut() -> u64>(reps: usize, mut f: F) -> (u64, u64) {
    let mut best = u64::MAX;
    let mut checksum = 0;
    for _ in 0..reps {
        let start = std::time::Instant::now();
        checksum = f();
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    (best.max(1), checksum)
}

/// `d2tree bench hotpath`: before/after measurement of the hot-path
/// query engine.
///
/// * **resolve** — every live path resolved through (a) a rebuilt copy
///   of the legacy layout (one `BTreeMap<Box<str>, NodeId>` per node,
///   string comparisons on every step, exactly what `NamespaceTree`
///   stored before name interning) and (b) the interned
///   [`NamespaceTree::resolve`] (one symbol-table probe per component,
///   `u32` comparisons down the child lists).
/// * **locate** — every live target located through (a) the legacy
///   formulation (collect the root→target chain into a fresh `Vec`,
///   scan downward for the first indexed node) and (b) the
///   allocation-free upward walk, uncached and memoised.
/// * **sweep** — a Fig. 5-style cell grid replayed serially and on the
///   worker pool, cross-checked cell by cell for byte-identical output.
///
/// All three are cross-checked for answer equality before timing; any
/// disagreement is a hard error.
fn cmd_bench_hotpath(opts: &Opts) -> Result<String, CliError> {
    let nodes = opts.num("nodes", 20_000usize)?;
    let ops = opts.num("ops", 50_000usize)?;
    let seed = opts.num("seed", 42u64)?;
    let reps = opts.num("reps", 3usize)?.max(1);
    let check = opts.num("check", 0.0f64)?;
    let out_path = opts
        .get("out")
        .unwrap_or("results/BENCH_hotpath.json")
        .to_owned();

    let workload = WorkloadBuilder::new(TraceProfile::dtr().with_nodes(nodes).with_operations(ops))
        .seed(seed)
        .build();
    let tree = &workload.tree;

    // --- resolve: legacy string-walk vs interned ---------------------------
    let ids: Vec<NodeId> = tree.nodes().map(|(id, _)| id).collect();
    let paths: Vec<NsPath> = ids.iter().map(|&id| tree.path_of(id)).collect();
    let max_index = ids.iter().map(|id| id.index()).max().unwrap_or(0);
    let mut legacy_children: Vec<std::collections::BTreeMap<Box<str>, NodeId>> =
        vec![std::collections::BTreeMap::new(); max_index + 1];
    for (id, node) in tree.nodes() {
        for (sym, child) in node.children() {
            legacy_children[id.index()].insert(tree.symbols().resolve(sym).into(), child);
        }
    }
    let legacy_resolve = |path: &NsPath| -> Option<NodeId> {
        let mut cur = tree.root();
        for comp in path.components() {
            cur = *legacy_children.get(cur.index())?.get(comp)?;
        }
        Some(cur)
    };
    // Clients resolving the same paths repeatedly pre-intern them once;
    // the pre-interning cost sits outside the timed loop just like the
    // legacy maps' construction does.
    let sym_paths: Vec<Vec<d2tree_namespace::Sym>> = paths
        .iter()
        .map(|p| tree.intern_path(p).expect("own paths intern"))
        .collect();
    for (&id, path) in ids.iter().zip(&paths) {
        if legacy_resolve(path) != Some(id) || tree.resolve(path) != Some(id) {
            return Err(CliError::Bench(format!("resolver disagreement on {path}")));
        }
    }
    let fold = |acc: u64, id: Option<NodeId>| acc.wrapping_add(id.map_or(0, |i| i.index() as u64));
    let (legacy_resolve_ns, ra) = best_ns(reps, || {
        paths.iter().fold(0, |acc, p| fold(acc, legacy_resolve(p)))
    });
    let (interned_resolve_ns, rb) = best_ns(reps, || {
        paths.iter().fold(0, |acc, p| fold(acc, tree.resolve(p)))
    });
    let (preinterned_resolve_ns, rc) = best_ns(reps, || {
        sym_paths
            .iter()
            .fold(0, |acc, s| fold(acc, tree.resolve_syms(s)))
    });
    if ra != rb || rb != rc {
        return Err(CliError::Bench(
            "resolve checksum mismatch between legacy, interned and pre-interned passes".to_owned(),
        ));
    }

    // --- locate: legacy Vec-collecting scan vs memoised upward walk --------
    const MDS: u16 = 8;
    const INDEX_EVERY: usize = 16;
    let mut index = LocalIndex::new();
    for (i, &id) in ids.iter().enumerate() {
        if i % INDEX_EVERY == 0 && id != tree.root() {
            index.insert(id, MdsId((i % MDS as usize) as u16));
        }
    }
    let legacy_locate = |target: NodeId| -> Option<(NodeId, MdsId)> {
        // The pre-memo formulation: allocate the full chain, scan down.
        tree.path_from_root(target)
            .into_iter()
            .find_map(|id| index.owner_of(id).map(|owner| (id, owner)))
    };
    for &id in &ids {
        let memo = index.locate(tree, id);
        if legacy_locate(id) != memo || memo != index.locate_uncached(tree, id) {
            return Err(CliError::Bench(format!(
                "locate disagreement on node {}",
                id.index()
            )));
        }
    }
    let lfold = |acc: u64, hit: Option<(NodeId, MdsId)>| {
        acc.wrapping_add(hit.map_or(0, |(id, _)| id.index() as u64))
    };
    let (legacy_locate_ns, la) = best_ns(reps, || {
        ids.iter().fold(0, |acc, &t| lfold(acc, legacy_locate(t)))
    });
    let (uncached_locate_ns, lb) = best_ns(reps, || {
        ids.iter()
            .fold(0, |acc, &t| lfold(acc, index.locate_uncached(tree, t)))
    });
    let (memo_locate_ns, lc) = best_ns(reps, || {
        ids.iter()
            .fold(0, |acc, &t| lfold(acc, index.locate(tree, t)))
    });
    if la != lb || lb != lc {
        return Err(CliError::Bench(
            "locate checksum mismatch between legacy, uncached and memoised passes".to_owned(),
        ));
    }

    // --- locate_mut: memoised locate under interleaved mutations -----------
    // Index churn (an insert, a burst of locates over a hot working
    // set, the matching remove) interleaved with lookups, timed twice:
    // wholesale invalidation (every mutation discards the whole memo,
    // so the hot set can never stay warm) vs per-subtree dirty-root
    // eviction (only entries whose cached chain passes through the
    // mutated root are dropped, so unrelated hot targets keep hitting).
    // The hot set is Zipf-style small — fewer hot directories than
    // lookups per mutation window — which is exactly the regime the
    // memo exists for.
    // Each rep ends exactly where it started, so reps are comparable;
    // the three passes must agree on a fold checksum or the bench
    // errors.
    const LOCATES_PER_MUTATION: usize = 256;
    const HOT_SET: usize = 128;
    let churn: Vec<NodeId> = ids
        .iter()
        .copied()
        .step_by(97)
        .filter(|&id| id != tree.root() && index.owner_of(id).is_none())
        .take(64)
        .collect();
    if churn.is_empty() {
        return Err(CliError::Bench(
            "locate_mut bench found no unindexed churn roots".to_owned(),
        ));
    }
    let mutations = churn.len() * 2;
    let locates = churn.len() * LOCATES_PER_MUTATION;
    let hot = &ids[..ids.len().min(HOT_SET)];
    let run_locate_mut = |wholesale: bool, uncached: bool| -> (u64, u64) {
        let mut idx = index.clone();
        idx.set_wholesale_invalidation(wholesale);
        let mut cursor = 0usize;
        best_ns(reps, || {
            let mut acc = 0u64;
            for (j, &root) in churn.iter().enumerate() {
                idx.insert(root, MdsId((j % MDS as usize) as u16));
                for _ in 0..LOCATES_PER_MUTATION {
                    let t = hot[cursor % hot.len()];
                    cursor += 1;
                    let hit = if uncached {
                        idx.locate_uncached(tree, t)
                    } else {
                        idx.locate(tree, t)
                    };
                    acc = lfold(acc, hit);
                }
                idx.remove(root);
            }
            // Rewind so every rep sees the same target stream.
            cursor = 0;
            acc
        })
    };
    let (mut_uncached_ns, ma) = run_locate_mut(false, true);
    let (mut_wholesale_ns, mb) = run_locate_mut(true, false);
    let (mut_dirty_ns, mc) = run_locate_mut(false, false);
    if ma != mb || mb != mc {
        return Err(CliError::Bench(
            "locate_mut checksum mismatch between uncached, wholesale and dirty-root passes"
                .to_owned(),
        ));
    }

    // --- sweep: serial vs parallel Fig. 5-style grid -----------------------
    let threads = thread_count();
    let ms = [5usize, 10, 15, 20, 25, 30];
    let pop = workload.popularity();
    let run_sweep = |workers: usize| -> (u64, Vec<String>) {
        let start = std::time::Instant::now();
        let cells = parallel_cells_with(workers, ms.len(), |i| {
            let mut scheme = D2TreeScheme::new(D2TreeConfig::by_proportion(0.01).with_seed(seed));
            scheme.build(tree, &pop, &ClusterSpec::homogeneous(ms[i], 1.0));
            let sim = Simulator::new(SimConfig {
                seed,
                ..SimConfig::default()
            });
            let out = sim.replay(tree, &workload.trace, &scheme);
            format!("{:.0}", out.throughput)
        });
        (start.elapsed().as_nanos() as u64, cells)
    };
    let (serial_sweep_ns, serial_cells) = run_sweep(1);
    let (parallel_sweep_ns, parallel_cells) = run_sweep(threads);
    if serial_cells != parallel_cells {
        return Err(CliError::Bench(
            "parallel sweep output diverged from the serial sweep".to_owned(),
        ));
    }

    let n_paths = paths.len().max(1) as u64;
    let n_mut_locates = locates.max(1) as u64;
    let resolve_speedup = legacy_resolve_ns as f64 / preinterned_resolve_ns as f64;
    let locate_speedup = legacy_locate_ns as f64 / memo_locate_ns as f64;
    let locate_mut_speedup = mut_wholesale_ns as f64 / mut_dirty_ns.max(1) as f64;
    let sweep_speedup = serial_sweep_ns as f64 / parallel_sweep_ns.max(1) as f64;

    let json = format!(
        "{{\n  \"nodes\": {nodes},\n  \"ops\": {ops},\n  \"seed\": {seed},\n  \
         \"reps\": {reps},\n  \"paths\": {n_paths},\n  \
         \"resolve\": {{\"legacy_ns_per_op\": {}, \"interned_ns_per_op\": {}, \
         \"preinterned_ns_per_op\": {}, \"speedup_x\": {resolve_speedup:.2}}},\n  \
         \"locate\": {{\"legacy_ns_per_op\": {}, \"uncached_ns_per_op\": {}, \
         \"memo_ns_per_op\": {}, \"speedup_x\": {locate_speedup:.2}}},\n  \
         \"locate_mut\": {{\"mutations\": {mutations}, \"locates\": {locates}, \
         \"uncached_ns_per_op\": {}, \"wholesale_ns_per_op\": {}, \
         \"dirty_root_ns_per_op\": {}, \"speedup_x\": {locate_mut_speedup:.2}}},\n  \
         \"sweep\": {{\"cells\": {}, \"threads\": {threads}, \
         \"serial_ns\": {serial_sweep_ns}, \"parallel_ns\": {parallel_sweep_ns}, \
         \"speedup_x\": {sweep_speedup:.2}}}\n}}\n",
        legacy_resolve_ns / n_paths,
        interned_resolve_ns / n_paths,
        preinterned_resolve_ns / n_paths,
        legacy_locate_ns / n_paths,
        uncached_locate_ns / n_paths,
        memo_locate_ns / n_paths,
        mut_uncached_ns / n_mut_locates,
        mut_wholesale_ns / n_mut_locates,
        mut_dirty_ns / n_mut_locates,
        ms.len(),
    );
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&out_path, &json)?;
    // Repo-root copy so the headline numbers sit next to BENCH_store.json
    // (skipped when --out redirects the report elsewhere).
    let root_copy = "BENCH_hotpath.json";
    let wrote_root_copy = out_path == "results/BENCH_hotpath.json";
    if wrote_root_copy {
        std::fs::write(root_copy, &json)?;
    }

    let mut text = format!(
        "hotpath bench: {} live paths over {nodes} nodes, best of {reps} rep(s)\n\
         resolve: legacy {} ns/op, interned {} ns/op, pre-interned {} ns/op \
         ({resolve_speedup:.2}x)\n\
         locate:  legacy {} ns/op, uncached {} ns/op, memoised {} ns/op ({locate_speedup:.2}x)\n\
         locate under mutation ({mutations} mutations / {locates} locates): \
         uncached {} ns/op, wholesale {} ns/op, dirty-root {} ns/op \
         ({locate_mut_speedup:.2}x vs wholesale)\n\
         sweep:   {} cells, serial {:.1} ms, parallel {:.1} ms on {threads} thread(s) \
         ({sweep_speedup:.2}x)\n\
         report written to {out_path}{}\n",
        paths.len(),
        legacy_resolve_ns / n_paths,
        interned_resolve_ns / n_paths,
        preinterned_resolve_ns / n_paths,
        legacy_locate_ns / n_paths,
        uncached_locate_ns / n_paths,
        memo_locate_ns / n_paths,
        mut_uncached_ns / n_mut_locates,
        mut_wholesale_ns / n_mut_locates,
        mut_dirty_ns / n_mut_locates,
        ms.len(),
        serial_sweep_ns as f64 / 1e6,
        parallel_sweep_ns as f64 / 1e6,
        if wrote_root_copy {
            format!(" (and {root_copy})")
        } else {
            String::new()
        },
    );
    if check > 0.0 {
        if resolve_speedup < check || locate_speedup < check {
            return Err(CliError::Bench(format!(
                "hot-path speedups below the required {check}x floor: \
                 resolve {resolve_speedup:.2}x, locate {locate_speedup:.2}x"
            )));
        }
        text.push_str(&format!(
            "check passed: resolve and locate both exceed {check}x\n"
        ));
    }
    Ok(text)
}

/// Derives the cluster both sides of the TCP serving layer agree on:
/// the synthetic tree + trace from the workload flags, and the D2-Tree
/// placement/local-index built over that trace's popularity. `serve`
/// and `load` must be given identical --profile/--nodes/--ops/--seed/
/// --gl/--mds values — the placement depends on trace popularity, so a
/// mismatched client would route at a cluster nobody is serving.
fn derive_cluster(
    opts: &Opts,
) -> Result<(Arc<NamespaceTree>, Trace, Placement, LocalIndex, usize), CliError> {
    let profile = profile_by_name(opts.get("profile").unwrap_or("dtr"))?
        .with_nodes(opts.num("nodes", 2_000usize)?)
        .with_operations(opts.num("ops", 10_000usize)?);
    let seed = opts.num("seed", 42u64)?;
    let gl = opts.num("gl", 0.01f64)?;
    let m = opts.num("mds", 1usize)?;
    if m == 0 {
        return Err(CliError::Usage("--mds must be at least 1".to_owned()));
    }
    let workload = WorkloadBuilder::new(profile).seed(seed).build();
    let tree = Arc::new(workload.tree);
    let trace = workload.trace;
    let pop = trace.popularity(&tree);
    let mut scheme = D2TreeScheme::new(D2TreeConfig::by_proportion(gl).with_seed(seed));
    scheme.build(&tree, &pop, &ClusterSpec::homogeneous(m, 1.0));
    let placement = scheme.placement().clone();
    // LocalIndex is deliberately not Clone (it owns a memo cache); the
    // owner map is tiny, so rebuild it entry by entry.
    let mut index = LocalIndex::new();
    for (root, owner) in scheme.local_index().iter() {
        index.insert(root, owner);
    }
    Ok((tree, trace, placement, index, m))
}

fn cmd_serve(opts: &Opts) -> Result<String, CliError> {
    let (tree, _trace, placement, index, m) = derive_cluster(opts)?;
    let mds_id = opts.num("mds-id", 0u16)?;
    if usize::from(mds_id) >= m {
        return Err(CliError::Usage(format!(
            "--mds-id {mds_id} is outside the {m}-MDS derivation (see --mds)"
        )));
    }
    let addr = opts.get("addr").unwrap_or("127.0.0.1:0");
    let duration_ms = opts.num("duration-ms", 0u64)?;
    let sample = opts.num("sample", 0.0f64)?;
    let seed = opts.num("seed", 42u64)?;

    let registry = Arc::new(Registry::new());
    names::register_all(&registry);
    let mut mds = NetMds::new(
        Arc::clone(&tree),
        placement,
        index,
        MdsId(mds_id),
        Arc::clone(&registry),
    );
    if sample > 0.0 {
        mds = mds.with_tracer(Arc::new(Tracer::new(Sampler::new(seed, sample))));
    }
    if let Some(root) = opts.get("store-root") {
        mds = mds.with_store_root(std::path::Path::new(root), StoreConfig::default());
    }
    let mds = Arc::new(mds);
    let server = NetServer::bind(addr, Arc::clone(&mds), NetServerConfig::default())?;
    let bound = server.local_addr();
    if let Some(port_file) = opts.get("port-file") {
        write_port_file(port_file, &bound.to_string())?;
    }
    let admin = match opts.get("admin-addr") {
        Some(admin_addr) => {
            let config = AdminConfig {
                tick_interval: Duration::from_millis(opts.num("admin-tick-ms", 250u64)?),
                ..AdminConfig::default()
            };
            let admin = AdminServer::bind(admin_addr, Arc::clone(&mds), config)?;
            if let Some(port_file) = opts.get("admin-port-file") {
                write_port_file(port_file, &admin.local_addr().to_string())?;
            }
            Some(admin)
        }
        None => {
            if opts.get("admin-port-file").is_some() {
                return Err(CliError::Usage(
                    "--admin-port-file needs --admin-addr".to_owned(),
                ));
            }
            None
        }
    };
    if duration_ms == 0 {
        // Daemon mode: serve until the process is killed. (`park` can
        // wake spuriously, hence the loop.)
        loop {
            std::thread::park();
        }
    }
    std::thread::sleep(Duration::from_millis(duration_ms));
    // Admin first: its ticker samples the MDS, so stop the scrape plane
    // before tearing the data plane down.
    let admin_line = match admin {
        Some(admin) => {
            let admin_bound = admin.local_addr();
            let stats = admin.shutdown();
            format!(
                "admin on {admin_bound}: {} scrapes, {} errors\n",
                stats.scrapes, stats.errors
            )
        }
        None => String::new(),
    };
    mds.sync();
    let served = mds.served();
    let redirects = mds.redirects();
    let stats = server.shutdown();
    Ok(format!(
        "mds {mds_id} served on {bound} for {duration_ms} ms\n\
         served: {served} ops, redirects: {redirects}\n\
         connections: {}, frames: {}, decode errors: {}, resets: {}\n{admin_line}",
        stats.conns, stats.frames, stats.decode_errors, stats.conn_resets
    ))
}

/// Writes `addr` to `path` via write-then-rename so a polling reader
/// never sees a half-written address.
fn write_port_file(path: &str, addr: &str) -> Result<(), CliError> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, format!("{addr}\n"))?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// The server-side latency matrix: short label × exporter name, one per
/// op kind × outcome, as registered by `NetMds`.
const SRV_LATENCY: [(&str, &str); 9] = [
    ("read_ok", names::SRV_LATENCY_US_READ_OK),
    ("read_redirect", names::SRV_LATENCY_US_READ_REDIRECT),
    ("read_error", names::SRV_LATENCY_US_READ_ERROR),
    ("write_ok", names::SRV_LATENCY_US_WRITE_OK),
    ("write_redirect", names::SRV_LATENCY_US_WRITE_REDIRECT),
    ("write_error", names::SRV_LATENCY_US_WRITE_ERROR),
    ("update_ok", names::SRV_LATENCY_US_UPDATE_OK),
    ("update_redirect", names::SRV_LATENCY_US_UPDATE_REDIRECT),
    ("update_error", names::SRV_LATENCY_US_UPDATE_ERROR),
];

/// Total server-observed requests: every lane of the op × outcome matrix.
fn srv_ops(doc: &MetricsDoc) -> u64 {
    doc.histogram_count_where(|n| n.starts_with("srv_latency_us_"))
}

/// The raw token of `"key":<value>` in a flat JSON object, mapped to
/// `n/a` when absent or `null` (the recorder serialises NaN/∞ as null).
fn json_token(body: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    let token = body.find(&pat).map(|start| {
        let rest = &body[start + pat.len()..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest[..end].trim()
    });
    match token {
        None | Some("null") | Some("") => "n/a".to_owned(),
        Some(t) => t.to_owned(),
    }
}

/// One refresh line of `d2tree top`: ops/s from scrape-to-scrape count
/// deltas, quantiles from the busiest server-side histogram lane,
/// Def. 3/5 and status from `/health`.
fn top_line(doc: &MetricsDoc, prev: Option<&MetricsDoc>, health: &(u16, String)) -> String {
    let ops = srv_ops(doc);
    let redirects =
        doc.histogram_count_where(|n| n.starts_with("srv_latency_us_") && n.ends_with("_redirect"));
    let (delta_ops, delta_us) = match prev {
        // First refresh: rate over the daemon's whole lifetime.
        None => (ops, doc.uptime_us),
        Some(p) => (
            ops.saturating_sub(srv_ops(p)),
            doc.uptime_us.saturating_sub(p.uptime_us),
        ),
    };
    let rate = delta_ops as f64 / (delta_us.max(1) as f64 / 1e6);
    let busiest = SRV_LATENCY
        .iter()
        .filter_map(|(_, name)| doc.histogram(name))
        .max_by_key(|h| h.count);
    let (p50, p99) = busiest.map_or((0, 0), |h| (h.p50, h.p99));
    let redirect_pct = if ops == 0 {
        0.0
    } else {
        redirects as f64 * 100.0 / ops as f64
    };
    let (health_status, health_body) = health;
    format!(
        "up {:>8.1}s  ops {ops} ({rate:.0}/s)  redirects {redirect_pct:.1}%  conns {}  \
         srv p50 {p50} µs  p99 {p99} µs  locality {}  balance {}  health {}",
        doc.uptime_us as f64 / 1e6,
        doc.gauge(names::NET_ACTIVE_CONNS),
        json_token(health_body, "locality"),
        json_token(health_body, "balance"),
        if *health_status == 200 {
            "ok"
        } else {
            "UNHEALTHY"
        },
    )
}

fn cmd_top(opts: &Opts) -> Result<String, CliError> {
    let addr = opts.required("admin-addr")?.to_owned();
    let refresh = Duration::from_millis(opts.num("refresh-ms", 1_000u64)?);
    let iters = opts.num("iters", 0u64)?;
    let timeout = Duration::from_millis(opts.num("timeout-ms", 2_000u64)?);
    let mut out = String::new();
    let mut prev: Option<MetricsDoc> = None;
    let mut refreshes = 0u64;
    loop {
        let (status, body) = admin_get(&addr, "/metrics.json", timeout)?;
        if status != 200 {
            return Err(CliError::Bench(format!(
                "admin plane at {addr} answered /metrics.json with HTTP {status}"
            )));
        }
        let doc = parse_metrics_json(&body).ok_or_else(|| {
            CliError::Bench(format!(
                "admin plane at {addr} returned an unparsable /metrics.json"
            ))
        })?;
        let health = admin_get(&addr, "/health", timeout)?;
        let line = top_line(&doc, prev.as_ref(), &health);
        if iters == 0 {
            // Streaming mode: the loop never returns, so print live.
            println!("{line}");
        } else {
            out.push_str(&line);
            out.push('\n');
        }
        prev = Some(doc);
        refreshes += 1;
        if iters > 0 && refreshes >= iters {
            return Ok(out);
        }
        std::thread::sleep(refresh);
    }
}

/// Renders one [`LoadReport`] as a JSON object body (no trailing
/// comma); `extra` is spliced in as additional `, "key": value` pairs
/// (empty for a plain run, scrape-overhead fields when the admin plane
/// was polled mid-run).
fn load_report_json(
    mode: &str,
    target_qps: Option<f64>,
    pipeline: usize,
    r: &LoadReport,
    extra: &str,
) -> String {
    let target = target_qps.map_or(String::new(), |q| format!("\"target_qps\": {q:.1}, "));
    format!(
        "  \"{mode}\": {{{target}\"pipeline\": {pipeline}, \
         \"attempted\": {}, \"completed\": {}, \"errors\": {}, \
         \"timeouts\": {}, \"retries_exhausted\": {}, \"deadline_exceeded\": {}, \
         \"not_found\": {}, \"redirects_followed\": {}, \"reconnects\": {}, \
         \"elapsed_ms\": {:.1}, \"achieved_qps\": {:.1}, \
         \"latency_us\": {{\"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
         \"p999\": {}, \"max\": {}}}{extra}}}",
        r.attempted,
        r.completed,
        r.errors,
        r.timeouts,
        r.retries_exhausted,
        r.deadline_exceeded,
        r.not_found,
        r.redirects_followed,
        r.reconnects,
        r.elapsed.as_secs_f64() * 1e3,
        r.achieved_qps,
        r.latency.mean(),
        r.latency.p50,
        r.latency.p90,
        r.latency.p99,
        r.latency.p999,
        r.latency.max,
    )
}

/// What one mid-run scraper pass saw.
struct ScrapeRun {
    /// Successful `/metrics.json` scrapes.
    scrapes: u64,
    /// Scrapes that failed to connect, read, or parse.
    failures: u64,
}

/// Runs `body` while a background thread polls `/metrics.json` on the
/// admin plane at `hz`, stopping the poller when `body` returns.
fn scrape_during<T>(
    addr: &str,
    hz: f64,
    timeout: Duration,
    body: impl FnOnce() -> T,
) -> (T, ScrapeRun) {
    let stop = Arc::new(AtomicBool::new(false));
    let poller = {
        let stop = Arc::clone(&stop);
        let addr = addr.to_owned();
        let period = Duration::from_secs_f64(1.0 / hz);
        std::thread::spawn(move || {
            let mut run = ScrapeRun {
                scrapes: 0,
                failures: 0,
            };
            while !stop.load(Ordering::Relaxed) {
                match admin_get(&addr, "/metrics.json", timeout) {
                    Ok((200, body)) if parse_metrics_json(&body).is_some() => run.scrapes += 1,
                    _ => run.failures += 1,
                }
                // Sleep in short slices so stopping is prompt even at
                // low scrape rates.
                let mut slept = Duration::ZERO;
                while slept < period && !stop.load(Ordering::Relaxed) {
                    let nap = Duration::from_millis(25).min(period - slept);
                    std::thread::sleep(nap);
                    slept += nap;
                }
            }
            run
        })
    };
    let result = body();
    stop.store(true, Ordering::Relaxed);
    let run = poller.join().expect("admin scraper thread panicked");
    (result, run)
}

/// Renders the server-observed side of the benchmark: the non-empty
/// lanes of the serve-latency matrix plus admin-plane totals, from the
/// final post-run `/metrics.json` scrape.
fn server_section_json(addr: &str, scrape_hz: f64, doc: &MetricsDoc) -> String {
    let lanes: Vec<String> = SRV_LATENCY
        .iter()
        .filter_map(|(label, name)| {
            let h = doc.histogram(name)?;
            (h.count > 0).then(|| {
                format!(
                    "\"{label}\": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
                     \"p999\": {}, \"max\": {}}}",
                    h.count, h.p50, h.p90, h.p99, h.p999, h.max
                )
            })
        })
        .collect();
    let batch_depth = doc
        .histogram(names::NET_BATCH_DEPTH)
        .filter(|h| h.count > 0)
        .map_or(String::new(), |h| {
            format!(
                ", \"batch_depth\": {{\"count\": {}, \"mean\": {:.2}, \"p50\": {}, \
                 \"p99\": {}, \"max\": {}}}",
                h.count,
                h.mean(),
                h.p50,
                h.p99,
                h.max
            )
        });
    format!(
        "  \"server\": {{\"admin_addr\": \"{addr}\", \"scrape_hz\": {scrape_hz:.1}, \
         \"uptime_us\": {}, \"ops\": {}, \"scrapes\": {}, \"scrape_errors\": {}, \
         \"batches\": {}, \"wal_group_commits\": {}{batch_depth}, \
         \"latency_us\": {{{}}}}}",
        doc.uptime_us,
        srv_ops(doc),
        doc.counter(names::ADMIN_SCRAPES_TOTAL),
        doc.counter(names::ADMIN_ERRORS_TOTAL),
        doc.counter(names::NET_BATCHES_TOTAL),
        doc.counter(names::WAL_GROUP_COMMITS_TOTAL),
        lanes.join(", "),
    )
}

/// One authoritative `/metrics.json` scrape, parsed — shared by the
/// pre/post delta bookkeeping in `cmd_load` and the final server
/// section.
fn fetch_metrics_doc(addr: &str, timeout: Duration) -> Result<MetricsDoc, CliError> {
    let (status, body) = admin_get(addr, "/metrics.json", timeout)?;
    if status != 200 {
        return Err(CliError::Bench(format!(
            "admin plane at {addr} answered /metrics.json with HTTP {status}"
        )));
    }
    parse_metrics_json(&body).ok_or_else(|| {
        CliError::Bench(format!(
            "admin plane at {addr} returned an unparsable /metrics.json"
        ))
    })
}

fn cmd_load(opts: &Opts) -> Result<String, CliError> {
    let (tree, trace, _placement, index, _m) = derive_cluster(opts)?;
    let addrs: Vec<String> = opts
        .required("addr")?
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(ToOwned::to_owned)
        .collect();
    if addrs.is_empty() {
        return Err(CliError::Usage(
            "--addr needs at least one ip:port".to_owned(),
        ));
    }
    let conns = opts.num("conns", 4usize)?;
    if conns == 0 {
        return Err(CliError::Usage("--conns must be at least 1".to_owned()));
    }
    let count = opts.num("count", trace.len())?;
    let qps = opts.num("qps", 2_000.0f64)?;
    if qps <= 0.0 {
        return Err(CliError::Usage("--qps must be positive".to_owned()));
    }
    let timeout = Duration::from_millis(opts.num("timeout-ms", 2_000u64)?);
    let seed = opts.num("seed", 42u64)?;
    let check_p99_us = opts.num("check-p99-us", 0u64)?;
    let out_path = opts
        .get("out")
        .unwrap_or("results/BENCH_net.json")
        .to_owned();
    let admin_addr = opts.get("admin-addr").map(ToOwned::to_owned);
    let scrape_hz = opts.num("scrape-hz", 1.0f64)?;
    if scrape_hz <= 0.0 {
        return Err(CliError::Usage("--scrape-hz must be positive".to_owned()));
    }
    let modes: Vec<(&str, LoadMode)> = match opts.get("mode").unwrap_or("closed") {
        "closed" => vec![("closed", LoadMode::Closed)],
        "open" => vec![("open", LoadMode::Open { target_qps: qps })],
        "both" => vec![
            ("closed", LoadMode::Closed),
            ("open", LoadMode::Open { target_qps: qps }),
        ],
        other => {
            return Err(CliError::Usage(format!(
                "--mode expects closed, open or both, got {other:?}"
            )))
        }
    };
    let pipelines: Vec<usize> = opts
        .get("pipeline")
        .unwrap_or("1")
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<usize>().map_err(|_| {
                CliError::Usage(format!(
                    "--pipeline expects a comma list of depths, got {s:?}"
                ))
            })
        })
        .collect::<Result<_, _>>()?;
    if pipelines.is_empty() || pipelines.contains(&0) {
        return Err(CliError::Usage(
            "--pipeline needs at least one depth, every depth ≥ 1".to_owned(),
        ));
    }

    let registry = Arc::new(Registry::new());
    names::register_all(&registry);
    let mut sections = Vec::new();
    let mut text = String::new();
    let mut failures = Vec::new();
    let mut dead_sections = Vec::new();
    for (mode_name, mode) in &modes {
        for &pipeline in &pipelines {
            let name = if pipeline == 1 {
                (*mode_name).to_owned()
            } else {
                format!("{mode_name}_p{pipeline}")
            };
            let cfg = LoadConfig {
                addrs: addrs.clone(),
                conns,
                ops: count,
                mode: *mode,
                timeout,
                retry: RetryPolicy::default(),
                seed,
                pipeline,
            };
            // With an admin plane to scrape, run the section twice —
            // once quiet for a baseline, once with the poller — so the
            // report can state what mid-run observability costs in
            // ops/s, and bracket the scraped pass with two extra
            // scrapes so fsyncs/op and batch depth are exact deltas.
            let (report, extra) = match &admin_addr {
                None => (
                    run_load(&cfg, &tree, &index, &trace, &registry, None),
                    String::new(),
                ),
                Some(addr) => {
                    let baseline = run_load(&cfg, &tree, &index, &trace, &registry, None);
                    let pre = fetch_metrics_doc(addr, timeout)?;
                    let (scraped, scrape) = scrape_during(addr, scrape_hz, timeout, || {
                        run_load(&cfg, &tree, &index, &trace, &registry, None)
                    });
                    let post = fetch_metrics_doc(addr, timeout)?;
                    let overhead_pct = if baseline.achieved_qps > 0.0 {
                        (baseline.achieved_qps - scraped.achieved_qps) * 100.0
                            / baseline.achieved_qps
                    } else {
                        0.0
                    };
                    let hist_count =
                        |d: &MetricsDoc, n: &str| d.histogram(n).map_or(0, |h| h.count);
                    let hist_sum = |d: &MetricsDoc, n: &str| d.histogram(n).map_or(0, |h| h.sum);
                    let fsyncs = hist_count(&post, names::WAL_FSYNC_US)
                        .saturating_sub(hist_count(&pre, names::WAL_FSYNC_US));
                    let group_commits = post
                        .counter(names::WAL_GROUP_COMMITS_TOTAL)
                        .saturating_sub(pre.counter(names::WAL_GROUP_COMMITS_TOTAL));
                    let batches = hist_count(&post, names::NET_BATCH_DEPTH)
                        .saturating_sub(hist_count(&pre, names::NET_BATCH_DEPTH));
                    let batched_frames = hist_sum(&post, names::NET_BATCH_DEPTH)
                        .saturating_sub(hist_sum(&pre, names::NET_BATCH_DEPTH));
                    let fsyncs_per_op = if scraped.completed == 0 {
                        0.0
                    } else {
                        fsyncs as f64 / scraped.completed as f64
                    };
                    let batch_depth_mean = if batches == 0 {
                        0.0
                    } else {
                        batched_frames as f64 / batches as f64
                    };
                    text.push_str(&format!(
                        "{name}: scrape overhead {overhead_pct:.2}% at {scrape_hz:.1} Hz \
                         (baseline {:.0} ops/s, scraped {:.0} ops/s, {} scrapes, {} failures)\n\
                         {name}: {fsyncs} fsyncs / {} ops = {fsyncs_per_op:.3} fsyncs/op, \
                         mean server batch depth {batch_depth_mean:.2}\n",
                        baseline.achieved_qps,
                        scraped.achieved_qps,
                        scrape.scrapes,
                        scrape.failures,
                        scraped.completed,
                    ));
                    let extra = format!(
                        ", \"baseline_qps\": {:.1}, \"scrape_overhead_pct\": {overhead_pct:.2}, \
                         \"scrapes\": {}, \"scrape_failures\": {}, \
                         \"fsyncs\": {fsyncs}, \"fsyncs_per_op\": {fsyncs_per_op:.4}, \
                         \"wal_group_commits\": {group_commits}, \
                         \"batch_depth_mean\": {batch_depth_mean:.2}",
                        baseline.achieved_qps, scrape.scrapes, scrape.failures,
                    );
                    (scraped, extra)
                }
            };
            let target = match mode {
                LoadMode::Open { target_qps } => Some(*target_qps),
                LoadMode::Closed => None,
            };
            text.push_str(&format!(
                "{name}: {}/{} ops over {conns} conn(s) in {:.2} s — {:.0} ops/s, \
                 p50 {} µs, p99 {} µs ({} redirects, {} errors)\n",
                report.completed,
                report.attempted,
                report.elapsed.as_secs_f64(),
                report.achieved_qps,
                report.latency.p50,
                report.latency.p99,
                report.redirects_followed,
                report.reconnects + report.errors,
            ));
            if report.completed == 0 {
                dead_sections.push(name.clone());
            } else if check_p99_us > 0 && report.latency.p99 > check_p99_us {
                failures.push(format!(
                    "{name}: p99 {} µs exceeds the {check_p99_us} µs ceiling",
                    report.latency.p99
                ));
            }
            sections.push(load_report_json(&name, target, pipeline, &report, &extra));
        }
    }
    // A run that completed nothing measured nothing: refuse to write
    // the artifact at all, so a dead benchmark can never be committed
    // as if it were a result.
    if !dead_sections.is_empty() {
        return Err(CliError::Bench(format!(
            "refusing to write {out_path}: zero operations completed in section(s) {}",
            dead_sections.join(", ")
        )));
    }
    if let Some(addr) = &admin_addr {
        // One final scrape after the last pass: the authoritative
        // server-observed latency matrix next to the client-observed
        // sections above.
        let doc = fetch_metrics_doc(addr, timeout)?;
        sections.push(server_section_json(addr, scrape_hz, &doc));
    }
    let snap = registry.snapshot();
    let net_counter = |n: &str| {
        snap.counters
            .iter()
            .find(|(k, _)| k.name == n && k.mds.is_none())
            .map_or(0, |(_, v)| *v)
    };
    let addrs_json: Vec<String> = addrs.iter().map(|a| format!("\"{a}\"")).collect();
    let json = format!(
        "{{\n  \"addrs\": [{}],\n  \"conns\": {conns},\n  \"ops\": {count},\n  \
         \"seed\": {seed},\n{},\n  \
         \"net\": {{\"conns\": {}, \"frames\": {}, \"decode_errors\": {}, \
         \"conn_resets\": {}}}\n}}\n",
        addrs_json.join(", "),
        sections.join(",\n"),
        net_counter(names::NET_CONNS_TOTAL),
        net_counter(names::NET_FRAMES_TOTAL),
        net_counter(names::NET_DECODE_ERRORS_TOTAL),
        net_counter(names::NET_CONN_RESETS_TOTAL),
    );
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&out_path, &json)?;
    text.push_str(&format!("report written to {out_path}\n"));
    if !failures.is_empty() {
        return Err(CliError::Bench(failures.join("; ")));
    }
    if check_p99_us > 0 {
        text.push_str(&format!(
            "check passed: every mode's p99 is under {check_p99_us} µs\n"
        ));
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    fn tmp_prefix(tag: &str) -> String {
        let dir =
            std::env::temp_dir().join(format!("d2tree-cli-test-{tag}-{}", std::process::id()));
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(&args(&["help"])).unwrap().contains("USAGE"));
        assert!(matches!(run(&args(&["bogus"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn bench_hotpath_cross_checks_and_reports() {
        let out_file = format!("{}.json", tmp_prefix("hotpath"));
        let out = run(&args(&[
            "bench", "hotpath", "--nodes", "500", "--ops", "1500", "--reps", "1", "--seed", "7",
            "--out", &out_file,
        ]))
        .unwrap();
        assert!(out.contains("resolve: legacy"), "{out}");
        assert!(out.contains("memoised"), "{out}");
        let json = std::fs::read_to_string(&out_file).unwrap();
        assert!(json.contains("\"preinterned_ns_per_op\""), "{json}");
        assert!(json.contains("\"sweep\""), "{json}");
        let _ = std::fs::remove_file(&out_file);

        // An unreachable --check floor must fail loudly. (Timing noise
        // cannot rescue it: no real machine hits a 1e6x speedup.)
        let err = run(&args(&[
            "bench", "hotpath", "--nodes", "300", "--ops", "900", "--reps", "1", "--check",
            "1000000", "--out", &out_file,
        ]));
        assert!(matches!(err, Err(CliError::Bench(_))), "{err:?}");
        let _ = std::fs::remove_file(&out_file);

        assert!(matches!(run(&args(&["bench"])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args(&["bench", "nope"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_load_loopback_roundtrip() {
        let port_file = format!("{}.port", tmp_prefix("serve"));
        let out_file = format!("{}.json", tmp_prefix("loadreport"));
        // A single-MDS derivation: one daemon owns every subtree, so the
        // load run must complete all ops. (Redirect-following across two
        // daemons is exercised in tests/net_serve.rs.)
        let shared = [
            "--profile",
            "dtr",
            "--nodes",
            "300",
            "--ops",
            "600",
            "--seed",
            "7",
            "--mds",
            "1",
        ];

        let server = {
            let port_file = port_file.clone();
            std::thread::spawn(move || {
                let mut a = args(&[
                    "serve",
                    "--addr",
                    "127.0.0.1:0",
                    "--mds-id",
                    "0",
                    "--duration-ms",
                    "4000",
                    "--port-file",
                    &port_file,
                ]);
                a.extend(args(&shared));
                run(&a).unwrap()
            })
        };

        // The daemon writes the bound address once it is listening.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                break s.trim().to_owned();
            }
            assert!(
                std::time::Instant::now() < deadline,
                "port file never appeared"
            );
            std::thread::sleep(Duration::from_millis(20));
        };

        let mut a = args(&[
            "load",
            "--addr",
            &addr,
            "--conns",
            "2",
            "--count",
            "400",
            "--mode",
            "both",
            "--qps",
            "800",
            "--check-p99-us",
            "2000000",
            "--out",
            &out_file,
        ]);
        a.extend(args(&shared));
        let out = run(&a).unwrap();
        assert!(out.contains("closed: 400/400 ops"), "{out}");
        assert!(out.contains("open: 400/400 ops"), "{out}");
        assert!(out.contains("check passed"), "{out}");

        let json = std::fs::read_to_string(&out_file).unwrap();
        assert!(json.contains("\"closed\""), "{json}");
        assert!(json.contains("\"target_qps\": 800.0"), "{json}");
        assert!(json.contains("\"net\""), "{json}");

        let served = server.join().unwrap();
        assert!(served.contains("mds 0 served"), "{served}");

        // A mismatched --mds-id must be rejected before binding anything.
        assert!(matches!(
            run(&args(&["serve", "--mds-id", "9", "--nodes", "200", "--ops", "200"])),
            Err(CliError::Usage(msg)) if msg.contains("--mds-id")
        ));
        assert!(matches!(
            run(&args(&["load", "--conns", "2"])),
            Err(CliError::Usage(msg)) if msg.contains("--addr")
        ));

        let _ = std::fs::remove_file(&port_file);
        let _ = std::fs::remove_file(&out_file);
    }

    #[test]
    fn synth_stats_partition_replay_pipeline() {
        let prefix = tmp_prefix("pipeline");
        let out = run(&args(&[
            "synth",
            "--profile",
            "lmbe",
            "--nodes",
            "800",
            "--ops",
            "4000",
            "--seed",
            "7",
            "--out",
            &prefix,
        ]))
        .unwrap();
        assert!(out.contains("800 nodes"), "{out}");

        let tree_file = format!("{prefix}.tree");
        let trace_file = format!("{prefix}.trace");
        let stats = run(&args(&[
            "stats",
            "--tree",
            &tree_file,
            "--trace",
            &trace_file,
        ]))
        .unwrap();
        assert!(stats.contains("4000 ops"), "{stats}");

        for scheme in ["d2tree", "static", "dynamic", "hash", "drop", "anglecut"] {
            let out = run(&args(&[
                "partition",
                "--tree",
                &tree_file,
                "--trace",
                &trace_file,
                "--scheme",
                scheme,
                "--mds",
                "4",
            ]))
            .unwrap();
            assert!(out.contains("balance"), "{scheme}: {out}");
        }

        let replay = run(&args(&[
            "replay",
            "--tree",
            &tree_file,
            "--trace",
            &trace_file,
            "--scheme",
            "d2tree",
            "--mds",
            "4",
            "--clients",
            "16",
        ]))
        .unwrap();
        assert!(replay.contains("completed: 4000 ops"), "{replay}");

        let _ = std::fs::remove_file(tree_file);
        let _ = std::fs::remove_file(trace_file);
    }

    #[test]
    fn report_renders_prometheus_and_json() {
        let prefix = tmp_prefix("report");
        run(&args(&[
            "synth",
            "--profile",
            "dtr",
            "--nodes",
            "500",
            "--ops",
            "2000",
            "--out",
            &prefix,
        ]))
        .unwrap();
        let tree_file = format!("{prefix}.tree");
        let trace_file = format!("{prefix}.trace");

        let both = run(&args(&[
            "report",
            "--tree",
            &tree_file,
            "--trace",
            &trace_file,
            "--scheme",
            "d2tree",
            "--mds",
            "4",
            "--clients",
            "16",
        ]))
        .unwrap();
        assert!(
            both.contains("# TYPE d2tree_mds_ops_total counter"),
            "{both}"
        );
        assert!(both.contains("\"counters\""), "{both}");
        assert!(
            both.contains("d2tree_op_latency_us{quantile=\"0.99\"}"),
            "{both}"
        );

        let prom = run(&args(&[
            "report",
            "--tree",
            &tree_file,
            "--trace",
            &trace_file,
            "--scheme",
            "d2tree",
            "--mds",
            "4",
            "--clients",
            "16",
            "--format",
            "prometheus",
        ]))
        .unwrap();
        assert!(prom.contains("d2tree_mds_ops_total{mds=\"0\"}"), "{prom}");
        assert!(!prom.contains("\"counters\""), "{prom}");

        let json = run(&args(&[
            "report",
            "--tree",
            &tree_file,
            "--trace",
            &trace_file,
            "--scheme",
            "d2tree",
            "--mds",
            "4",
            "--clients",
            "16",
            "--format",
            "json",
        ]))
        .unwrap();
        assert!(json.contains("\"histograms\""), "{json}");

        assert!(matches!(
            run(&args(&[
                "report", "--tree", &tree_file, "--trace", &trace_file, "--scheme", "d2tree",
                "--format", "yaml",
            ])),
            Err(CliError::Usage(msg)) if msg.contains("--format")
        ));

        let _ = std::fs::remove_file(tree_file);
        let _ = std::fs::remove_file(trace_file);
    }

    #[test]
    fn replay_writes_metrics_snapshot() {
        let prefix = tmp_prefix("metricsout");
        run(&args(&[
            "synth",
            "--profile",
            "dtr",
            "--nodes",
            "400",
            "--ops",
            "1500",
            "--out",
            &prefix,
        ]))
        .unwrap();
        let tree_file = format!("{prefix}.tree");
        let trace_file = format!("{prefix}.trace");
        let metrics_file = format!("{prefix}.metrics.json");
        let out = run(&args(&[
            "replay",
            "--tree",
            &tree_file,
            "--trace",
            &trace_file,
            "--scheme",
            "d2tree",
            "--mds",
            "4",
            "--clients",
            "16",
            "--metrics-out",
            &metrics_file,
        ]))
        .unwrap();
        assert!(out.contains("metrics written"), "{out}");
        let written = std::fs::read_to_string(&metrics_file).unwrap();
        assert!(written.contains("mds_ops_total"), "{written}");
        let _ = std::fs::remove_file(tree_file);
        let _ = std::fs::remove_file(trace_file);
        let _ = std::fs::remove_file(metrics_file);
    }

    #[test]
    fn usage_errors_are_helpful() {
        assert!(matches!(
            run(&args(&["synth", "--nodes", "100"])),
            Err(CliError::Usage(msg)) if msg.contains("--out")
        ));
        assert!(matches!(
            run(&args(&[
                "partition",
                "--tree",
                "x",
                "--trace",
                "y",
                "--scheme",
                "nope"
            ])),
            Err(CliError::Io(_)) | Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["synth", "--nodes", "abc", "--out", "x"])),
            Err(CliError::Usage(msg)) if msg.contains("number")
        ));
    }

    #[test]
    fn hotspots_and_check_commands() {
        let prefix = tmp_prefix("hotcheck");
        run(&args(&[
            "synth",
            "--profile",
            "dtr",
            "--nodes",
            "600",
            "--ops",
            "3000",
            "--out",
            &prefix,
        ]))
        .unwrap();
        let tree_file = format!("{prefix}.tree");
        let trace_file = format!("{prefix}.trace");
        let hot = run(&args(&[
            "hotspots",
            "--tree",
            &tree_file,
            "--trace",
            &trace_file,
            "--top",
            "5",
        ]))
        .unwrap();
        assert!(hot.contains('%'), "{hot}");
        assert!(hot.lines().count() <= 6);
        let check = run(&args(&[
            "check",
            "--tree",
            &tree_file,
            "--trace",
            &trace_file,
            "--mds",
            "4",
        ]))
        .unwrap();
        assert!(check.starts_with("OK"), "{check}");
        let _ = std::fs::remove_file(tree_file);
        let _ = std::fs::remove_file(trace_file);
    }

    #[test]
    fn chaos_command_runs_clean_and_deterministic() {
        let out = run(&args(&[
            "chaos", "--seed", "42", "--mds", "3", "--nodes", "300", "--ticks", "300",
        ]))
        .unwrap();
        assert!(out.contains("identical across two runs"), "{out}");
        assert!(out.contains("invariants: all clean"), "{out}");
        assert!(out.contains("kills: 2"), "{out}");

        assert!(matches!(
            run(&args(&["chaos", "--mds", "1"])),
            Err(CliError::Usage(msg)) if msg.contains("--mds")
        ));
        assert!(matches!(
            run(&args(&["chaos", "--seed", "x"])),
            Err(CliError::Usage(msg)) if msg.contains("number")
        ));
    }

    #[test]
    fn report_lists_fault_and_rejoin_counters() {
        let prefix = tmp_prefix("faultreport");
        run(&args(&[
            "synth",
            "--profile",
            "dtr",
            "--nodes",
            "400",
            "--ops",
            "1500",
            "--out",
            &prefix,
        ]))
        .unwrap();
        let tree_file = format!("{prefix}.tree");
        let trace_file = format!("{prefix}.trace");

        // Clean run: counters are pre-registered and render at zero.
        let prom = run(&args(&[
            "report",
            "--tree",
            &tree_file,
            "--trace",
            &trace_file,
            "--scheme",
            "d2tree",
            "--mds",
            "4",
            "--clients",
            "16",
            "--format",
            "prometheus",
        ]))
        .unwrap();
        assert!(prom.contains("d2tree_faults_dropped_total 0"), "{prom}");
        assert!(prom.contains("d2tree_rejoins_total 0"), "{prom}");
        assert!(prom.contains("d2tree_rejoin_first_claim_ms"), "{prom}");

        // Faulty run: the injector fills the drop counter in.
        let faulty = run(&args(&[
            "report",
            "--tree",
            &tree_file,
            "--trace",
            &trace_file,
            "--scheme",
            "d2tree",
            "--mds",
            "4",
            "--clients",
            "16",
            "--format",
            "json",
            "--fault-drop",
            "0.05",
            "--fault-dup",
            "0.05",
        ]))
        .unwrap();
        assert!(faulty.contains("faults_dropped_total"), "{faulty}");
        assert!(
            !faulty.contains("\"name\":\"faults_dropped_total\",\"mds\":null,\"value\":0}"),
            "fault flags should inject at least one drop: {faulty}"
        );

        let _ = std::fs::remove_file(tree_file);
        let _ = std::fs::remove_file(trace_file);
    }

    #[test]
    fn trace_command_checks_def1_def3_and_writes_chrome_json() {
        let prefix = tmp_prefix("tracecmd");
        run(&args(&[
            "synth",
            "--profile",
            "dtr",
            "--nodes",
            "500",
            "--ops",
            "2000",
            "--out",
            &prefix,
        ]))
        .unwrap();
        let tree_file = format!("{prefix}.tree");
        let trace_file = format!("{prefix}.trace");
        let out_file = format!("{prefix}.chrome.json");

        let trace_args = args(&[
            "trace",
            "--tree",
            &tree_file,
            "--trace",
            &trace_file,
            "--scheme",
            "d2tree",
            "--mds",
            "4",
            "--clients",
            "16",
            "--out",
            &out_file,
        ]);
        let first = run(&trace_args).unwrap();
        assert!(
            first.contains("Def. 1: span-derived hops == path_jumps"),
            "{first}"
        );
        assert!(first.contains("Def. 3: observed locality"), "{first}");
        assert!(first.contains("0 shed"), "{first}");
        let written = std::fs::read_to_string(&out_file).unwrap();
        assert!(written.starts_with("{\"displayTimeUnit\""), "{written}");
        assert!(written.contains("\"traceEvents\""));
        assert!(written.contains("\"name\":\"op\""));
        assert!(written.contains("\"name\":\"serve\""));

        // Same seed, same workspace: the digest line must reproduce.
        let second = run(&trace_args).unwrap();
        let digest_line = |s: &str| {
            s.lines()
                .find(|l| l.contains("digest"))
                .map(str::to_owned)
                .expect("digest line")
        };
        assert_eq!(digest_line(&first), digest_line(&second));

        // A faulty run attributes latency to the injected fault kind.
        let faulty = run(&args(&[
            "trace",
            "--tree",
            &tree_file,
            "--trace",
            &trace_file,
            "--scheme",
            "d2tree",
            "--mds",
            "4",
            "--clients",
            "16",
            "--out",
            &out_file,
            "--fault-drop",
            "0.1",
        ]))
        .unwrap();
        assert!(
            faulty.contains("injected faults observed (latency attributed"),
            "{faulty}"
        );

        assert!(matches!(
            run(&args(&[
                "trace", "--tree", &tree_file, "--trace", &trace_file, "--scheme", "d2tree",
                "--sample", "2.0",
            ])),
            Err(CliError::Usage(msg)) if msg.contains("--sample")
        ));

        let _ = std::fs::remove_file(tree_file);
        let _ = std::fs::remove_file(trace_file);
        let _ = std::fs::remove_file(out_file);
    }

    #[test]
    fn trace_bench_writes_overhead_report() {
        let out_file = format!("{}.bench.json", tmp_prefix("tracebench"));
        let out = run(&args(&[
            "trace",
            "--bench",
            "--nodes",
            "300",
            "--ops",
            "1500",
            "--reps",
            "1",
            "--clients",
            "8",
            "--seed",
            "7",
            "--out",
            &out_file,
        ]))
        .unwrap();
        assert!(out.contains("tracing off:"), "{out}");
        assert!(out.contains("sampling 100%:"), "{out}");
        let written = std::fs::read_to_string(&out_file).unwrap();
        assert!(written.contains("\"baseline_ns\""), "{written}");
        assert!(written.contains("\"overhead_pct\""), "{written}");
        assert!(written.contains("\"rate\": 0.01"), "{written}");
        // 100% sampling over 1500 ops must actually record spans.
        assert!(written.contains("\"label\": \"100%\""), "{written}");
        let hundred = written
            .lines()
            .find(|l| l.contains("\"label\": \"100%\""))
            .unwrap();
        assert!(!hundred.contains("\"spans\": 0"), "{hundred}");
        let _ = std::fs::remove_file(&out_file);

        // An absurdly generous budget always passes and reports so. (A
        // deterministic failure case would need a guaranteed-positive
        // overhead, which timing noise cannot promise at this size, so
        // the reject path relies on the shared formatting code only.)
        let out = run(&args(&[
            "trace",
            "--bench",
            "--nodes",
            "300",
            "--ops",
            "1500",
            "--reps",
            "1",
            "--clients",
            "8",
            "--seed",
            "7",
            "--check-overhead",
            "1000000",
            "--out",
            &out_file,
        ]))
        .unwrap();
        assert!(out.contains("overhead check:"), "{out}");
        assert!(out.contains("within budget"), "{out}");
        let _ = std::fs::remove_file(out_file);
    }

    #[test]
    fn health_renders_trajectory_and_check_gates_exit() {
        let jsonl_file = format!("{}.health.jsonl", tmp_prefix("health"));
        let csv_file = format!("{}.health.csv", tmp_prefix("health"));
        let small = [
            "health",
            "--nodes",
            "400",
            "--ops",
            "3000",
            "--mds",
            "4",
            "--phases",
            "3",
            "--rounds",
            "4",
            "--clients",
            "32",
            "--seed",
            "7",
        ];

        // Adaptive run with rules that cannot fire: renders the full
        // trajectory, exports both formats, and --check exits cleanly.
        let mut pass: Vec<&str> = small.to_vec();
        pass.extend_from_slice(&[
            "--check",
            "--min-balance",
            "0",
            "--max-retry-rate",
            "1000000",
            "--out",
            &jsonl_file,
            "--csv",
            &csv_file,
        ]);
        let out = run(&args(&pass)).unwrap();
        assert!(out.contains("scheme D2-Tree"), "{out}");
        assert!(out.contains("tick  balance"), "{out}");
        assert!(out.contains("health: OK"), "{out}");
        let jsonl = std::fs::read_to_string(&jsonl_file).unwrap();
        assert_eq!(jsonl.lines().count(), 4, "{jsonl}");
        assert!(jsonl.lines().all(|l| l.contains("\"balance\":")), "{jsonl}");
        let csv = std::fs::read_to_string(&csv_file).unwrap();
        assert!(csv.starts_with("tick,t_us,t_ms,locality,balance"), "{csv}");
        assert_eq!(csv.lines().count(), 5, "{csv}"); // header + 4 ticks
        let _ = std::fs::remove_file(jsonl_file);
        let _ = std::fs::remove_file(csv_file);

        // An unreachable balance floor must hard-fail under --check
        // (finite Def. 5 balance can never clear 1e12)…
        let mut fail: Vec<&str> = small.to_vec();
        fail.extend_from_slice(&["--check", "--min-balance", "1000000000000"]);
        let err = run(&args(&fail));
        assert!(matches!(err, Err(CliError::Health(_))), "{err:?}");

        // …but the same rules without --check only report, not fail.
        let mut warn: Vec<&str> = small.to_vec();
        warn.extend_from_slice(&["--min-balance", "1000000000000"]);
        let out = run(&args(&warn)).unwrap();
        assert!(out.contains("balance_below_min"), "{out}");

        // --inject-imbalance freezes the placement on a static scheme.
        let mut inject: Vec<&str> = small.to_vec();
        inject.extend_from_slice(&["--inject-imbalance", "--min-balance", "0"]);
        let out = run(&args(&inject)).unwrap();
        assert!(
            out.contains("frozen placement: imbalance injected"),
            "{out}"
        );
        assert!(out.contains("scheme Static Subtree"), "{out}");
    }

    #[test]
    fn report_dumps_event_journal_jsonl() {
        let prefix = tmp_prefix("eventsout");
        run(&args(&[
            "synth",
            "--profile",
            "dtr",
            "--nodes",
            "300",
            "--ops",
            "1000",
            "--out",
            &prefix,
        ]))
        .unwrap();
        let tree_file = format!("{prefix}.tree");
        let trace_file = format!("{prefix}.trace");
        let events_file = format!("{prefix}.events.jsonl");
        let out = run(&args(&[
            "report",
            "--tree",
            &tree_file,
            "--trace",
            &trace_file,
            "--scheme",
            "d2tree",
            "--mds",
            "4",
            "--clients",
            "16",
            "--format",
            "json",
            "--events-out",
            &events_file,
        ]))
        .unwrap();
        assert!(out.contains(&format!("written to {events_file}")), "{out}");
        let written = std::fs::read_to_string(&events_file).unwrap();
        for line in written.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        let _ = std::fs::remove_file(tree_file);
        let _ = std::fs::remove_file(trace_file);
        let _ = std::fs::remove_file(events_file);
    }

    #[test]
    fn store_inspect_verify_compact_roundtrip() {
        let dir = std::path::PathBuf::from(tmp_prefix("storecli"));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut store, _) = MdsStore::open(&dir, StoreConfig::manual()).unwrap();
            let mut rng = SplitMix(7);
            for _ in 0..200 {
                store.append(bench_record(&mut rng)).unwrap();
            }
            store.sync().unwrap();
        }
        let dir_s = dir.to_string_lossy().into_owned();

        let verify_out = run(&args(&["store", "verify", &dir_s])).unwrap();
        assert!(verify_out.starts_with("OK"), "{verify_out}");
        assert!(verify_out.contains("200 records"), "{verify_out}");

        let inspect_out = run(&args(&["store", "inspect", &dir_s])).unwrap();
        assert!(inspect_out.contains("next lsn: 200"), "{inspect_out}");
        assert!(inspect_out.contains("replayed records:"), "{inspect_out}");

        let compact_out = run(&args(&["store", "compact", &dir_s])).unwrap();
        assert!(compact_out.contains("snapshot at lsn 200"), "{compact_out}");

        // After compaction, the snapshot covers everything and the WAL
        // replays nothing.
        let inspect2 = run(&args(&["store", "inspect", &dir_s])).unwrap();
        assert!(inspect2.contains("snapshot lsn: 200"), "{inspect2}");

        assert!(matches!(
            run(&args(&["store", "verify"])),
            Err(CliError::Usage(msg)) if msg.contains("<dir>")
        ));
        assert!(matches!(
            run(&args(&["store", "defrag", &dir_s])),
            Err(CliError::Usage(msg)) if msg.contains("unknown store action")
        ));
        assert!(matches!(
            run(&args(&["store", "verify", "/no/such/store"])),
            Err(CliError::Store(_))
        ));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_bench_writes_json_report() {
        let out_file = format!("{}.bench.json", tmp_prefix("storebench"));
        let out = run(&args(&[
            "store",
            "bench",
            "--records",
            "3000",
            "--seed",
            "7",
            "--out",
            &out_file,
        ]))
        .unwrap();
        assert!(out.contains("recovered state matches"), "{out}");
        let written = std::fs::read_to_string(&out_file).unwrap();
        assert!(written.contains("\"records\": 3000"), "{written}");
        assert!(written.contains("\"recovery_us\""), "{written}");
        assert!(written.contains("\"wal_overhead_x\""), "{written}");
        let _ = std::fs::remove_file(out_file);
    }

    #[test]
    fn chaos_command_runs_store_schedule() {
        let out = run(&args(&[
            "chaos",
            "--seed",
            "7",
            "--mds",
            "3",
            "--nodes",
            "300",
            "--ticks",
            "300",
            "--store-crashes",
            "4",
        ]))
        .unwrap();
        assert!(out.contains("store chaos: 4 crashes"), "{out}");
        assert!(out.contains("store invariants: all clean"), "{out}");
    }

    #[test]
    fn chaos_command_runs_monitor_schedule() {
        let out = run(&args(&[
            "chaos",
            "--seed",
            "7",
            "--mds",
            "3",
            "--nodes",
            "300",
            "--ticks",
            "300",
            "--monitor-crashes",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("monitor chaos: 2 leader crashes"), "{out}");
        assert!(out.contains("control-plane invariants: all clean"), "{out}");
        assert!(out.contains("expired-fence probes confirmed"), "{out}");
    }

    #[test]
    fn report_lists_store_metrics_at_zero() {
        let prefix = tmp_prefix("storereport");
        run(&args(&[
            "synth",
            "--profile",
            "dtr",
            "--nodes",
            "300",
            "--ops",
            "1000",
            "--out",
            &prefix,
        ]))
        .unwrap();
        let tree_file = format!("{prefix}.tree");
        let trace_file = format!("{prefix}.trace");
        let prom = run(&args(&[
            "report",
            "--tree",
            &tree_file,
            "--trace",
            &trace_file,
            "--scheme",
            "d2tree",
            "--mds",
            "4",
            "--clients",
            "16",
            "--format",
            "prometheus",
        ]))
        .unwrap();
        for family in [
            "d2tree_wal_bytes_total 0",
            "d2tree_wal_records_total 0",
            "d2tree_snapshots_total 0",
            "d2tree_gl_delta_sync_entries_total 0",
            "d2tree_faults_storage_total 0",
            "d2tree_wal_append_us",
            "d2tree_wal_fsync_us",
            "d2tree_recovery_ms",
        ] {
            assert!(prom.contains(family), "missing {family} in:\n{prom}");
        }
        let _ = std::fs::remove_file(tree_file);
        let _ = std::fs::remove_file(trace_file);
    }

    #[test]
    fn missing_files_error_cleanly() {
        let err = run(&args(&[
            "stats",
            "--tree",
            "/no/such/file",
            "--trace",
            "/no/such/file",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
        assert!(!err.to_string().is_empty());
    }

    /// Polls a `--port-file` until the daemon writes the bound address.
    fn wait_port_file(path: &str) -> String {
        for _ in 0..200 {
            if let Ok(addr) = std::fs::read_to_string(path) {
                let addr = addr.trim().to_owned();
                if !addr.is_empty() {
                    return addr;
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        panic!("daemon never wrote {path}");
    }

    #[test]
    fn serve_admin_load_and_top_round_trip() {
        let prefix = tmp_prefix("adminplane");
        let port_file = format!("{prefix}.port");
        let admin_port_file = format!("{prefix}.admin.port");
        let out_file = format!("{prefix}.bench.json");
        let serve = {
            let (port_file, admin_port_file) = (port_file.clone(), admin_port_file.clone());
            std::thread::spawn(move || {
                run(&args(&[
                    "serve",
                    "--nodes",
                    "300",
                    "--ops",
                    "1500",
                    "--duration-ms",
                    "6000",
                    "--port-file",
                    &port_file,
                    "--admin-addr",
                    "127.0.0.1:0",
                    "--admin-port-file",
                    &admin_port_file,
                    "--admin-tick-ms",
                    "50",
                ]))
            })
        };
        let addr = wait_port_file(&port_file);
        let admin_addr = wait_port_file(&admin_port_file);

        // A fast scraper (20 Hz) against a short run still lands at
        // least one mid-run scrape; the report gains the overhead
        // fields and the server-observed latency section.
        let out = run(&args(&[
            "load",
            "--nodes",
            "300",
            "--ops",
            "1500",
            "--addr",
            &addr,
            "--conns",
            "2",
            "--admin-addr",
            &admin_addr,
            "--scrape-hz",
            "20",
            "--out",
            &out_file,
        ]))
        .unwrap();
        assert!(out.contains("scrape overhead"), "{out}");
        let json = std::fs::read_to_string(&out_file).unwrap();
        assert!(json.contains("\"scrape_overhead_pct\":"), "{json}");
        assert!(json.contains("\"baseline_qps\":"), "{json}");
        assert!(json.contains("\"server\": {\"admin_addr\""), "{json}");
        assert!(json.contains("\"read_ok\": {\"count\":"), "{json}");

        // `top` renders bounded refreshes with the served ops visible.
        let top = run(&args(&[
            "top",
            "--admin-addr",
            &admin_addr,
            "--iters",
            "2",
            "--refresh-ms",
            "50",
        ]))
        .unwrap();
        assert_eq!(top.lines().count(), 2, "{top}");
        for line in top.lines() {
            assert!(line.contains("ops 3000"), "both load passes visible: {top}");
            assert!(line.contains("health ok"), "{top}");
            assert!(line.contains("srv p50"), "{top}");
        }

        let summary = serve.join().expect("serve thread panicked").unwrap();
        assert!(summary.contains("served: 3000 ops"), "{summary}");
        assert!(summary.contains("admin on "), "{summary}");
        assert!(summary.contains(" scrapes"), "{summary}");
        for f in [port_file, admin_port_file, out_file] {
            let _ = std::fs::remove_file(f);
        }
    }
}
