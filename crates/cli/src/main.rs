//! The `d2tree` command-line entry point; all logic lives in the library.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match d2tree_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
