//! Scoped worker pool for fanning out independent benchmark cells.
//!
//! Every figure sweep is a grid of *cells* (one scheme × one cluster
//! size × one trace, say) whose computations share no mutable state:
//! each cell rebuilds its scheme from the same deterministic seed. That
//! makes them embarrassingly parallel — and, crucially, makes the
//! output *independent of execution order*. [`parallel_cells`] exploits
//! this: workers claim cell indices from an atomic counter, results
//! flow back over a channel tagged with their index, and the caller
//! receives them re-assembled in index order. Rendering stays serial
//! and in-order, so sweep output is byte-identical at any thread count.
//!
//! The thread count comes from `D2_THREADS` when set (a value of `1`
//! forces the serial path, handy for A/B timing), otherwise from
//! [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::channel;

/// Worker threads to use: `D2_THREADS` if set and ≥ 1, else the
/// machine's available parallelism, else 1.
#[must_use]
pub fn thread_count() -> usize {
    if let Some(n) = std::env::var("D2_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Computes `f(0), f(1), …, f(n - 1)` on [`thread_count`] scoped worker
/// threads and returns the results **in index order**.
///
/// `f` must be a pure function of its index (up to shared immutable
/// captures): cells are claimed dynamically, so the execution order is
/// nondeterministic even though the returned `Vec` never is.
///
/// # Panics
///
/// Propagates a panic from any cell (the scope joins all workers).
pub fn parallel_cells<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_cells_with(thread_count(), n, f)
}

/// [`parallel_cells`] with an explicit thread count (exposed so tests
/// and benchmarks can sweep thread counts without touching the
/// process-global `D2_THREADS`).
pub fn parallel_cells_with<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        let out = (0..n).map(f).collect();
        d2tree_telemetry::flush_thread_local();
        return out;
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = channel::unbounded::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if tx.send((i, f(i))).is_err() {
                        break;
                    }
                }
                // Cells may have traced spans into this worker's
                // thread-local sink buffers. Hand them to their sinks
                // before the scope joins, so every span a cell recorded
                // is drainable the moment this function returns — at
                // any thread count.
                d2tree_telemetry::flush_thread_local();
            });
        }
        // The workers hold the only remaining senders; recv disconnects
        // once they all finish and the queue drains.
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        while let Ok((i, value)) = rx.recv() {
            slots[i] = Some(value);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("worker produced every claimed cell"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_index_order_at_any_thread_count() {
        let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_cells_with(threads, 37, |i| i * i);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn zero_cells_yield_an_empty_vec() {
        let got: Vec<u8> = parallel_cells_with(4, 0, |_| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let runs = AtomicUsize::new(0);
        let got = parallel_cells_with(5, 100, |i| {
            runs.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(runs.load(Ordering::Relaxed), 100);
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn traced_cells_drain_identically_at_any_thread_count() {
        use d2tree_telemetry::{
            trace, ArgKey, Sampler, Span, SpanCtx, SpanId, SpanName, TraceId, Tracer,
        };

        let run = |threads: usize| {
            let tracer = Tracer::new(Sampler::always(7));
            let cells = parallel_cells_with(threads, 24, |i| {
                // Ids derive from the cell index, not the tracer's
                // shared counters, so the span set is a pure function
                // of the grid regardless of which worker claims what.
                let id = i as u64 + 1;
                let ctx = SpanCtx {
                    trace: TraceId(id),
                    span: SpanId(id),
                };
                tracer
                    .record(Span::root(ctx, SpanName::Op, id * 10, 3).with_arg(ArgKey::Target, id));
                i
            });
            assert_eq!(cells, (0..24).collect::<Vec<_>>());
            // Workers flushed their thread-local buffers before the
            // scope joined, so nothing recorded is still in flight.
            assert_eq!(tracer.sink().recorded(), 24, "threads = {threads}");
            assert_eq!(tracer.sink().len(), 24, "threads = {threads}");
            let mut spans = tracer.drain();
            assert_eq!(tracer.sink().dropped(), 0, "threads = {threads}");
            // Segment order follows flush order, which is scheduling-
            // dependent; the span *set* must not be.
            spans.sort_by_key(|s| (s.trace.0, s.id.0, s.start_us));
            trace::digest(&spans)
        };

        let reference = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), reference, "threads = {threads}");
        }
    }
}
