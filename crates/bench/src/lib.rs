//! Shared harness for regenerating every table and figure of the D2-Tree
//! paper.
//!
//! Each `src/bin/*` binary reproduces one exhibit:
//!
//! | Binary   | Paper exhibit | What it prints |
//! |----------|---------------|----------------|
//! | `table1` | Table I       | dataset description, paper vs synthetic |
//! | `table2` | Table II      | operation breakdowns, paper vs measured |
//! | `fig5`   | Fig. 5(a–c)   | throughput vs cluster size, 5 schemes × 3 traces |
//! | `fig6`   | Fig. 6(a–c)   | locality (Def. 3) vs cluster size |
//! | `fig7`   | Fig. 7(a–c)   | balance (Def. 5) vs cluster size after 20 replay rounds |
//! | `fig8`   | Fig. 8        | implied `L0`/`U0` vs global-layer proportion |
//! | `fig9`   | Fig. 9        | balance vs cluster size for 4 GL proportions |
//! | `theory` | Thm. 2–4      | DKW sample bounds vs measured balance error |
//!
//! Scale is controlled by environment variables so the full sweep can run
//! quickly in CI and at paper scale overnight: `D2_NODES` (default
//! 50 000), `D2_OPS` (default 200 000), `D2_SEED` (default 42).

#![warn(missing_docs)]

pub mod pool;

pub use pool::{parallel_cells, parallel_cells_with, thread_count};

use d2tree_core::Partitioner;
use d2tree_metrics::ClusterSpec;
use d2tree_namespace::Popularity;
use d2tree_workload::{TraceProfile, Workload, WorkloadBuilder};

/// Experiment scale knobs, read from the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Nodes per synthesised namespace.
    pub nodes: usize,
    /// Operations per trace.
    pub operations: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Reads `D2_NODES` / `D2_OPS` / `D2_SEED`, with CI-friendly defaults.
    #[must_use]
    pub fn from_env() -> Self {
        fn var(name: &str, default: u64) -> u64 {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        Scale {
            nodes: var("D2_NODES", 50_000) as usize,
            operations: var("D2_OPS", 200_000) as usize,
            seed: var("D2_SEED", 42),
        }
    }

    /// A small scale for unit tests of the harness itself.
    #[must_use]
    pub fn tiny() -> Self {
        Scale {
            nodes: 1_000,
            operations: 10_000,
            seed: 7,
        }
    }

    /// Applies the scale to a profile.
    #[must_use]
    pub fn apply(&self, profile: TraceProfile) -> TraceProfile {
        profile
            .with_nodes(self.nodes)
            .with_operations(self.operations)
    }
}

/// Builds the three paper workloads (DTR, LMBE, RA) at this scale.
#[must_use]
pub fn paper_workloads(scale: Scale) -> Vec<Workload> {
    TraceProfile::paper_presets()
        .into_iter()
        .map(|p| {
            WorkloadBuilder::new(scale.apply(p))
                .seed(scale.seed)
                .build()
        })
        .collect()
}

/// The cluster sizes of the paper's x-axes.
#[must_use]
pub fn mds_range() -> Vec<usize> {
    vec![5, 10, 15, 20, 25, 30]
}

/// The harness convention for capacities: `C_k = ΣL / M`, so the ideal
/// load factor is `μ = 1` and balance values are comparable across
/// cluster sizes and traces (the paper's Fig. 7/9 y-axis regime).
#[must_use]
pub fn normalized_cluster(m: usize, pop: &Popularity) -> ClusterSpec {
    // Total touch load is the sum of all total popularities; this keeps
    // per-server relative loads O(1).
    let total = pop.sum_individual().max(1.0);
    ClusterSpec::homogeneous(m, total / m as f64)
}

/// Builds a scheme against a workload and runs `rounds` of replay +
/// rebalance, mirroring the paper's "subtraces are replayed to these
/// clusters for 20 times" warm-up.
pub fn build_and_settle(
    scheme: &mut dyn Partitioner,
    workload: &Workload,
    cluster: &ClusterSpec,
    rounds: usize,
) -> Vec<f64> {
    let pop = workload.popularity();
    scheme.build(&workload.tree, &pop, cluster);
    for _ in 0..rounds {
        let _ = scheme.rebalance(&workload.tree, &pop, cluster);
    }
    scheme.loads(&workload.tree, &pop)
}

/// Formats one aligned text table.
#[must_use]
pub fn render_table(title: &str, headers: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let line = |cells: &[String], widths: &[usize]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:<width$}", c, width = widths[i]));
        }
        s.push('\n');
        s
    };
    out.push_str(&line(headers, &widths));
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
    }
    out
}

/// Formats a float compactly for table cells.
#[must_use]
pub fn fmt_float(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_owned()
    } else if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1e5 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_baselines::paper_lineup;

    #[test]
    fn scale_defaults_apply() {
        let scale = Scale::tiny();
        let p = scale.apply(TraceProfile::dtr());
        assert_eq!(p.nodes, 1_000);
        assert_eq!(p.operations, 10_000);
    }

    #[test]
    fn workloads_cover_all_three_traces() {
        let ws = paper_workloads(Scale::tiny());
        let names: Vec<&str> = ws.iter().map(|w| w.profile.name.as_str()).collect();
        assert_eq!(names, vec!["DTR", "LMBE", "RA"]);
    }

    #[test]
    fn normalized_cluster_yields_unit_mu() {
        let w = paper_workloads(Scale::tiny()).remove(0);
        let pop = w.popularity();
        let cluster = normalized_cluster(4, &pop);
        let mu = cluster.ideal_load_factor(pop.sum_individual());
        assert!((mu - 1.0).abs() < 1e-9);
    }

    #[test]
    fn settle_produces_loads_for_all_schemes() {
        let w = paper_workloads(Scale::tiny()).remove(1);
        let pop = w.popularity();
        let cluster = normalized_cluster(5, &pop);
        for mut scheme in paper_lineup(0.01, 1) {
            let loads = build_and_settle(scheme.as_mut(), &w, &cluster, 3);
            assert_eq!(loads.len(), 5, "{}", scheme.name());
            let _ = pop.sum_individual();
        }
    }

    #[test]
    fn table_rendering_aligns() {
        let s = render_table(
            "T",
            &["a".into(), "bb".into()],
            &[vec!["xxx".into(), "y".into()]],
        );
        assert!(s.contains("a    bb"));
        assert!(s.contains("xxx  y"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_float(f64::INFINITY), "inf");
        assert_eq!(fmt_float(0.0), "0");
        assert!(fmt_float(1.0e-9).contains('e'));
        assert_eq!(fmt_float(3.25), "3.250");
    }
}
