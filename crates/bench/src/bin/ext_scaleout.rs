//! Extension experiment: online cluster scale-out. Start on a small
//! cluster, add servers in steps, and watch the pending-pool mechanism
//! redistribute subtrees onto the newcomers without re-partitioning.

use d2tree_bench::{fmt_float, paper_workloads, render_table, Scale};
use d2tree_core::{D2TreeConfig, D2TreeScheme, Partitioner};
use d2tree_metrics::{balance, ClusterSpec};

fn main() {
    let scale = Scale::from_env();
    let workload = paper_workloads(scale).remove(0); // DTR
    let pop = workload.popularity();
    let unit = pop.sum_individual();

    println!("== Extension: online scale-out 4 -> 8 -> 16 -> 32 MDSs (DTR) ==\n");
    let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default().with_seed(scale.seed));
    scheme.build(
        &workload.tree,
        &pop,
        &ClusterSpec::homogeneous(4, unit / 4.0),
    );

    let headers: Vec<String> = ["Cluster", "Migrations", "Balance after", "Max/Ideal load"]
        .map(String::from)
        .to_vec();
    let mut rows = Vec::new();
    let mut record = |m: usize, migrations: usize, scheme: &D2TreeScheme| {
        let cluster = ClusterSpec::homogeneous(m, unit / m as f64);
        let loads = scheme.loads(&workload.tree, &pop);
        let ideal = loads.iter().sum::<f64>() / m as f64;
        let max = loads.iter().cloned().fold(0.0_f64, f64::max);
        rows.push(vec![
            format!("M={m}"),
            format!("{migrations}"),
            fmt_float(balance(&loads, &cluster)),
            format!("{:.2}", max / ideal),
        ]);
    };
    record(4, 0, &scheme);

    for m in [8usize, 16, 32] {
        let cluster = ClusterSpec::homogeneous(m, unit / m as f64);
        let mut migrations = scheme.expand_cluster(&workload.tree, &pop, &cluster).len();
        for _ in 0..4 {
            migrations += scheme.rebalance(&workload.tree, &pop, &cluster).len();
        }
        record(m, migrations, &scheme);
    }
    println!("{}", render_table("Scale-out", &headers, &rows));
    println!("\nNew servers join empty and pull subtrees through the pending pool;\nno re-hashing, no global re-partition.");
}
