//! Supplementary exhibit: end-to-end request latency per scheme (mean and
//! p99) at a fixed cluster size, for every trace.
//!
//! Not a figure in the paper, but the flip side of Fig. 5: with a fixed
//! closed-loop client base, throughput differences *are* latency
//! differences — forwarding hops and lock waits show up here directly.

use d2tree_baselines::paper_lineup;
use d2tree_bench::{normalized_cluster, paper_workloads, render_table, Scale};
use d2tree_cluster::{SimConfig, Simulator};

fn main() {
    let scale = Scale::from_env();
    let m = 16;
    println!("== Latency per scheme (M = {m}, 200 closed-loop clients) ==\n");

    for workload in paper_workloads(scale) {
        let pop = workload.popularity();
        let headers: Vec<String> = ["Scheme", "mean µs", "p99 µs", "hops/op", "max util %"]
            .map(String::from)
            .to_vec();
        let mut rows = Vec::new();
        for mut scheme in paper_lineup(0.01, scale.seed) {
            let cluster = normalized_cluster(m, &pop);
            scheme.build(&workload.tree, &pop, &cluster);
            let config = SimConfig {
                seed: scale.seed,
                ..SimConfig::default()
            };
            let out =
                Simulator::new(config).replay(&workload.tree, &workload.trace, scheme.as_ref());
            let max_util = out
                .utilization(config.workers_per_mds)
                .into_iter()
                .fold(0.0_f64, f64::max);
            rows.push(vec![
                scheme.name().to_owned(),
                format!("{:.0}", out.mean_latency_us),
                format!("{:.0}", out.p99_latency_us),
                format!("{:.2}", out.total_hops as f64 / out.completed as f64),
                format!("{:.0}", max_util * 100.0),
            ]);
        }
        println!(
            "{}",
            render_table(
                &format!("Latency — {}", workload.profile.name),
                &headers,
                &rows
            )
        );
    }
    println!("(max util = busiest server's worker occupancy; saturation ⇒ queueing delay)");
}
