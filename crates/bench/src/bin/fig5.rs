//! Fig. 5(a–c) — cluster throughput as the MDS cluster is scaled
//! (5→30 servers), for every scheme on every trace, over the
//! discrete-event cluster simulator.
//!
//! Paper shapes this must reproduce:
//! * DTR: D2-Tree scales near-linearly (≈83% of queries hit the
//!   replicated global layer); static subtree is competitive on raw
//!   throughput; dynamic subtree / DROP / AngleCut trail because path
//!   traversal forwards between servers.
//! * LMBE: D2-Tree's curve flattens/degrades past ~20 MDSs (58.6% of
//!   queries go to the local layer).
//! * RA: 16% updates lock the global layer, so D2-Tree grows slower than
//!   on DTR but still beats the dynamic/hashing schemes.
//!
//! Each (trace, scheme, M) cell is independent — the scheme is rebuilt
//! from the same seed inside the cell — so the grid fans out over
//! [`parallel_cells`] and renders in-order afterwards: output is
//! byte-identical at any `D2_THREADS`.

use d2tree_baselines::paper_lineup;
use d2tree_bench::{
    mds_range, normalized_cluster, paper_workloads, parallel_cells, render_table, Scale,
};
use d2tree_cluster::{SimConfig, Simulator};

fn main() {
    let scale = Scale::from_env();
    println!("== Fig. 5: Throughput (ops/s) as the MDS cluster is scaled ==");
    println!(
        "(discrete-event simulation; 200 closed-loop clients; seed {})\n",
        scale.seed
    );

    let workloads = paper_workloads(scale);
    let pops: Vec<_> = workloads.iter().map(|w| w.popularity()).collect();
    let ms = mds_range();
    let names: Vec<String> = paper_lineup(0.01, scale.seed)
        .iter()
        .map(|s| s.name().to_owned())
        .collect();

    // Cell index = ((workload * schemes) + slot) * ms + m_idx.
    let cell_count = workloads.len() * names.len() * ms.len();
    let cells = parallel_cells(cell_count, |i| {
        let m_idx = i % ms.len();
        let slot = (i / ms.len()) % names.len();
        let w_idx = i / (ms.len() * names.len());
        let workload = &workloads[w_idx];
        let pop = &pops[w_idx];
        let mut lineup = paper_lineup(0.01, scale.seed);
        let scheme = &mut lineup[slot];
        let cluster = normalized_cluster(ms[m_idx], pop);
        scheme.build(&workload.tree, pop, &cluster);
        let sim = Simulator::new(SimConfig {
            seed: scale.seed,
            ..SimConfig::default()
        });
        let out = sim.replay(&workload.tree, &workload.trace, scheme.as_ref());
        format!("{:.0}", out.throughput)
    });

    for (w_idx, workload) in workloads.iter().enumerate() {
        let mut headers = vec!["Scheme".to_owned()];
        headers.extend(ms.iter().map(|m| format!("M={m}")));

        let mut rows = Vec::new();
        for (slot, name) in names.iter().enumerate() {
            let base = (w_idx * names.len() + slot) * ms.len();
            let mut full = vec![name.clone()];
            full.extend(cells[base..base + ms.len()].iter().cloned());
            rows.push(full);
        }
        println!(
            "{}",
            render_table(
                &format!("Fig. 5 — {}", workload.profile.name),
                &headers,
                &rows
            )
        );
    }
}
