//! Fig. 5(a–c) — cluster throughput as the MDS cluster is scaled
//! (5→30 servers), for every scheme on every trace, over the
//! discrete-event cluster simulator.
//!
//! Paper shapes this must reproduce:
//! * DTR: D2-Tree scales near-linearly (≈83% of queries hit the
//!   replicated global layer); static subtree is competitive on raw
//!   throughput; dynamic subtree / DROP / AngleCut trail because path
//!   traversal forwards between servers.
//! * LMBE: D2-Tree's curve flattens/degrades past ~20 MDSs (58.6% of
//!   queries go to the local layer).
//! * RA: 16% updates lock the global layer, so D2-Tree grows slower than
//!   on DTR but still beats the dynamic/hashing schemes.

use d2tree_baselines::paper_lineup;
use d2tree_bench::{mds_range, normalized_cluster, paper_workloads, render_table, Scale};
use d2tree_cluster::{SimConfig, Simulator};

fn main() {
    let scale = Scale::from_env();
    println!("== Fig. 5: Throughput (ops/s) as the MDS cluster is scaled ==");
    println!(
        "(discrete-event simulation; 200 closed-loop clients; seed {})\n",
        scale.seed
    );

    for workload in paper_workloads(scale) {
        let pop = workload.popularity();
        let mut headers = vec!["Scheme".to_owned()];
        headers.extend(mds_range().iter().map(|m| format!("M={m}")));

        let mut rows = Vec::new();
        let scheme_count = paper_lineup(0.01, scale.seed).len();
        for slot in 0..scheme_count {
            let mut row = Vec::new();
            let mut name = String::new();
            for &m in &mds_range() {
                let mut lineup = paper_lineup(0.01, scale.seed);
                let scheme = &mut lineup[slot];
                name = scheme.name().to_owned();
                let cluster = normalized_cluster(m, &pop);
                scheme.build(&workload.tree, &pop, &cluster);
                let sim = Simulator::new(SimConfig {
                    seed: scale.seed,
                    ..SimConfig::default()
                });
                let out = sim.replay(&workload.tree, &workload.trace, scheme.as_ref());
                row.push(format!("{:.0}", out.throughput));
            }
            let mut full = vec![name];
            full.extend(row);
            rows.push(full);
        }
        println!(
            "{}",
            render_table(
                &format!("Fig. 5 — {}", workload.profile.name),
                &headers,
                &rows
            )
        );
    }
}
