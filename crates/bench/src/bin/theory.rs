//! Empirical validation of the theoretical analysis (Sec. V): the DKW
//! bound (Thm. 2), Lemma 1's sample-count prescription, and the balance
//! error bound of Thm. 3/4.
//!
//! For a sweep of sample counts, the sampled mirror-division allocator is
//! run and the per-server relative-load error `E|L_k/C_k − μ|` is
//! measured; the bound predicts it falls below `δμ` once the sample count
//! reaches the Lemma 1 / Thm. 3 prescription.

use d2tree_bench::{normalized_cluster, paper_workloads, render_table, Scale};
use d2tree_core::{allocate_sampled, collect_subtrees, split_to_proportion, SampleStrategy};
use d2tree_metrics::dkw;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let workload = paper_workloads(scale).remove(0); // DTR
    let pop = workload.popularity();
    let (gl, _) = split_to_proportion(&workload.tree, &pop, |_| 0.0, 0.01);
    let subtrees = collect_subtrees(&workload.tree, &gl, &pop);
    let h = subtrees.len();
    let weights: Vec<f64> = subtrees.iter().map(|s| s.popularity).collect();
    let total: f64 = weights.iter().sum();
    let u = weights.iter().cloned().fold(0.0_f64, f64::max);
    let l = weights.iter().cloned().fold(f64::INFINITY, f64::min);

    let m = 8;
    let cluster = normalized_cluster(m, &pop);

    println!("== Theory: DKW sampling accuracy (Thm. 2 / Lem. 1 / Thm. 3-4) ==");
    println!("(DTR local layer: H = {h} subtrees, span [{l:.1}, {u:.1}], M = {m})\n");

    // Lemma 1 / Thm. 3 prescriptions for a few target deltas.
    let t = 0.5;
    println!("Prescribed sample counts:");
    for delta_frac in [0.20, 0.10, 0.05] {
        let delta = delta_frac * (u - l);
        let k1 = dkw::lemma1_sample_count(t, h, l, u, delta);
        println!(
            "  Lemma 1: delta = {:.0} ({}% of span)  ->  {} samples  (violation prob <= {:.4})",
            delta,
            (delta_frac * 100.0) as u32,
            k1,
            dkw::violation_probability(k1, delta / (u - l))
        );
    }
    println!();

    // Measure the actual balance error of the sampled allocator.
    let ideal = total / m as f64;
    let headers: Vec<String> = [
        "Samples",
        "Mean |L_k - ideal| / ideal",
        "Max |L_k - ideal| / ideal",
    ]
    .map(String::from)
    .to_vec();
    let mut rows = Vec::new();
    for k in [10usize, 50, 250, 1_000, 5_000] {
        let mut mean_err = 0.0;
        let mut max_err: f64 = 0.0;
        const TRIALS: usize = 5;
        for trial in 0..TRIALS {
            let mut rng = StdRng::seed_from_u64(scale.seed + trial as u64);
            let owners = allocate_sampled(
                &subtrees,
                &cluster,
                &workload.tree,
                &gl,
                SampleStrategy::Uniform,
                k,
                &mut rng,
            );
            let mut loads = vec![0.0; m];
            for (s, o) in subtrees.iter().zip(&owners) {
                loads[o.index()] += s.popularity;
            }
            let errs: Vec<f64> = loads.iter().map(|l| (l - ideal).abs() / ideal).collect();
            mean_err += errs.iter().sum::<f64>() / m as f64 / TRIALS as f64;
            max_err = max_err.max(errs.iter().cloned().fold(0.0, f64::max));
        }
        rows.push(vec![
            format!("{k}"),
            format!("{mean_err:.4}"),
            format!("{max_err:.4}"),
        ]);
    }
    println!(
        "{}",
        render_table("Measured sampled-allocation error", &headers, &rows)
    );
    println!(
        "Thm. 4 bound on E[1/balance] at delta = 0.1, mu = 1: {:.5}",
        dkw::theorem4_variance_bound(m, 0.1, 1.0)
    );
    println!("Reproduction check: the error columns shrink as the sample count grows.");
}
