//! Fig. 6(a–c) — system locality (Def. 3, displayed ×1e−9 like the
//! paper's axes) under every scheme as the cluster is scaled.
//!
//! Paper shapes this must reproduce: D2-Tree and static subtree stay flat
//! in the cluster size (their jump counts do not depend on M); dynamic
//! subtree, DROP and AngleCut degrade with M; D2-Tree leads on DTR,
//! static subtree leads on LMBE.
//!
//! Cells are independent (each rebuilds its scheme from the shared
//! seed), so the grid fans out over [`parallel_cells`] and renders
//! in-order: output is byte-identical at any `D2_THREADS`.

use d2tree_baselines::paper_lineup;
use d2tree_bench::{
    mds_range, normalized_cluster, paper_workloads, parallel_cells, render_table, Scale,
};

fn main() {
    let scale = Scale::from_env();
    println!("== Fig. 6: Locality (Def. 3, x 1e-9) under different schemes ==\n");

    let workloads = paper_workloads(scale);
    let pops: Vec<_> = workloads.iter().map(|w| w.popularity()).collect();
    let ms = mds_range();
    let names: Vec<String> = paper_lineup(0.01, scale.seed)
        .iter()
        .map(|s| s.name().to_owned())
        .collect();

    let cell_count = workloads.len() * names.len() * ms.len();
    let cells = parallel_cells(cell_count, |i| {
        let m_idx = i % ms.len();
        let slot = (i / ms.len()) % names.len();
        let w_idx = i / (ms.len() * names.len());
        let workload = &workloads[w_idx];
        let pop = &pops[w_idx];
        let mut lineup = paper_lineup(0.01, scale.seed);
        let scheme = &mut lineup[slot];
        let cluster = normalized_cluster(ms[m_idx], pop);
        scheme.build(&workload.tree, pop, &cluster);
        let report = scheme.locality(&workload.tree, pop);
        format!("{:.3}", report.locality * 1e9)
    });

    for (w_idx, workload) in workloads.iter().enumerate() {
        let mut headers = vec!["Scheme".to_owned()];
        headers.extend(ms.iter().map(|m| format!("M={m}")));

        let mut rows = Vec::new();
        for (slot, name) in names.iter().enumerate() {
            let base = (w_idx * names.len() + slot) * ms.len();
            let mut full = vec![name.clone()];
            full.extend(cells[base..base + ms.len()].iter().cloned());
            rows.push(full);
        }
        println!(
            "{}",
            render_table(
                &format!("Fig. 6 — {}", workload.profile.name),
                &headers,
                &rows
            )
        );
    }
    println!("(locality of a single-server deployment is infinite; larger is better)");
}
