//! Fig. 6(a–c) — system locality (Def. 3, displayed ×1e−9 like the
//! paper's axes) under every scheme as the cluster is scaled.
//!
//! Paper shapes this must reproduce: D2-Tree and static subtree stay flat
//! in the cluster size (their jump counts do not depend on M); dynamic
//! subtree, DROP and AngleCut degrade with M; D2-Tree leads on DTR,
//! static subtree leads on LMBE.

use d2tree_baselines::paper_lineup;
use d2tree_bench::{mds_range, normalized_cluster, paper_workloads, render_table, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("== Fig. 6: Locality (Def. 3, x 1e-9) under different schemes ==\n");

    for workload in paper_workloads(scale) {
        let pop = workload.popularity();
        let mut headers = vec!["Scheme".to_owned()];
        headers.extend(mds_range().iter().map(|m| format!("M={m}")));

        let mut rows = Vec::new();
        let scheme_count = paper_lineup(0.01, scale.seed).len();
        for slot in 0..scheme_count {
            let mut row = Vec::new();
            let mut name = String::new();
            for &m in &mds_range() {
                let mut lineup = paper_lineup(0.01, scale.seed);
                let scheme = &mut lineup[slot];
                name = scheme.name().to_owned();
                let cluster = normalized_cluster(m, &pop);
                scheme.build(&workload.tree, &pop, &cluster);
                let report = scheme.locality(&workload.tree, &pop);
                row.push(format!("{:.3}", report.locality * 1e9));
            }
            let mut full = vec![name];
            full.extend(row);
            rows.push(full);
        }
        println!(
            "{}",
            render_table(
                &format!("Fig. 6 — {}", workload.profile.name),
                &headers,
                &rows
            )
        );
    }
    println!("(locality of a single-server deployment is infinite; larger is better)");
}
