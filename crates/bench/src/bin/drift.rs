//! Extension experiment: dynamic adjustment under hotspot drift
//! (Sec. IV-B's motivation — "both the size and popularity of subtrees
//! change over time in an unpredictable manner").
//!
//! A phased LMBE-style workload shifts its hot set every phase; each
//! scheme's access counters decay, it rebalances, and the balance it
//! sustains per phase is reported. Static partitioning cannot react;
//! D2-Tree and the dynamic schemes should hold their balance.

use d2tree_baselines::paper_lineup;
use d2tree_bench::{fmt_float, parallel_cells, render_table, Scale};
use d2tree_metrics::{balance, ClusterSpec};
use d2tree_namespace::Popularity;
use d2tree_workload::{DriftingWorkload, TraceProfile};

fn main() {
    let scale = Scale::from_env();
    const PHASES: usize = 5;
    const DECAY: f64 = 0.3;
    let workload = DriftingWorkload::generate(
        TraceProfile::lmbe()
            .with_nodes(scale.nodes)
            .with_operations(scale.operations),
        PHASES,
        scale.seed,
    );
    let m = 8;

    println!("== Extension: balance under hotspot drift (LMBE, M = {m}) ==");
    println!(
        "(hot-set overlap phase 0 -> 1: {:.0}%; counters decay by {DECAY} per phase)\n",
        workload.hot_overlap(0, 1, 100) * 100.0
    );

    let mut headers = vec!["Scheme".to_owned()];
    headers.extend((0..PHASES).map(|p| format!("phase {p}")));
    let mut rows = Vec::new();

    // A scheme's popularity counters carry over (with decay) from phase
    // to phase, so the parallel unit is a whole scheme *row*, not a
    // single phase. Rows are independent of each other and rebuilt from
    // the shared seed, so the sweep output is byte-identical at any
    // `D2_THREADS`.
    let scheme_count = paper_lineup(0.01, scale.seed).len();
    rows.extend(parallel_cells(scheme_count, |slot| {
        let mut lineup = paper_lineup(0.01, scale.seed);
        let scheme = &mut lineup[slot];
        let mut row = vec![scheme.name().to_owned()];

        // Popularity accumulates with decay, like the paper's counters.
        let mut pop = Popularity::new(&workload.tree);
        let mut built = false;
        for phase in &workload.phases {
            pop.decay(DECAY);
            for op in phase {
                pop.record(op.target, 1.0);
            }
            pop.rollup(&workload.tree);
            let cluster = ClusterSpec::homogeneous(m, pop.sum_individual() / m as f64);
            if built {
                for _ in 0..3 {
                    let _ = scheme.rebalance(&workload.tree, &pop, &cluster);
                }
            } else {
                scheme.build(&workload.tree, &pop, &cluster);
                built = true;
            }
            // Balance against *this phase's* fresh load only: what the
            // cluster actually experiences now.
            let mut phase_pop = Popularity::new(&workload.tree);
            for op in phase {
                phase_pop.record(op.target, 1.0);
            }
            phase_pop.rollup(&workload.tree);
            let phase_cluster = ClusterSpec::homogeneous(m, phase_pop.sum_individual() / m as f64);
            let loads = scheme.placement().loads(&workload.tree, &phase_pop);
            row.push(fmt_float(balance(&loads, &phase_cluster)));
        }
        row
    }));
    println!("{}", render_table("Balance per phase", &headers, &rows));
    println!("\nStatic subtree cannot adapt; D2-Tree / DROP / AngleCut re-tune each phase.");
}
