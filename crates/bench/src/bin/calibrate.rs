//! Calibration report: verifies that the synthetic trace presets
//! reproduce the layer-hit statistics the paper quotes in Sec. VI-A —
//! DTR ≈83% of queries hitting a 1% global layer, LMBE ≈58.6% of queries
//! going to the local layer, RA ≈67% of updates directed at the global
//! layer.
//!
//! Run after touching any `TraceProfile` parameter.

use d2tree_bench::{render_table, Scale};
use d2tree_core::{D2TreeConfig, D2TreeScheme, Partitioner};
use d2tree_metrics::ClusterSpec;
use d2tree_workload::{OpKind, TraceProfile, WorkloadBuilder};

fn main() {
    let scale = Scale::from_env();
    println!("== Calibration: synthetic traces vs the paper's quoted statistics ==\n");

    let paper_targets = [
        ("DTR", "GL query hit", 0.8306),
        ("LMBE", "LL query hit", 0.5857),
        ("RA", "updates -> GL", 0.67),
    ];

    let headers: Vec<String> = ["Trace", "Statistic", "Paper", "Measured"]
        .map(String::from)
        .to_vec();
    let mut rows = Vec::new();
    for (profile, (name, stat, target)) in
        TraceProfile::paper_presets().into_iter().zip(paper_targets)
    {
        let w = WorkloadBuilder::new(scale.apply(profile))
            .seed(scale.seed)
            .build();
        let pop = w.popularity();
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(4, 1.0));

        let measured = match name {
            "DTR" => {
                let all: Vec<_> = w.trace.iter().map(|o| o.target).collect();
                scheme.global_hit_fraction(all.iter())
            }
            "LMBE" => {
                let all: Vec<_> = w.trace.iter().map(|o| o.target).collect();
                1.0 - scheme.global_hit_fraction(all.iter())
            }
            _ => {
                let upd: Vec<_> = w
                    .trace
                    .iter()
                    .filter(|o| o.kind == OpKind::Update)
                    .map(|o| o.target)
                    .collect();
                scheme.global_hit_fraction(upd.iter())
            }
        };
        rows.push(vec![
            name.to_owned(),
            stat.to_owned(),
            format!("{:.1}%", target * 100.0),
            format!("{:.1}%", measured * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table("Layer hit-rate calibration", &headers, &rows)
    );
}
