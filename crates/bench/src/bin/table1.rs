//! Table I — description of the three datasets: the paper's published
//! numbers next to our synthetic substitutes.

use d2tree_bench::{paper_workloads, render_table, Scale};
use d2tree_workload::TraceStats;

fn main() {
    let scale = Scale::from_env();
    println!("== Table I: The Description of 3 Datasets ==");
    println!(
        "(synthetic substitutes at {} nodes / {} ops; paper columns quoted from the publication)\n",
        scale.nodes, scale.operations
    );

    let headers: Vec<String> = [
        "Trace",
        "Paper Size",
        "Paper Records",
        "Paper MaxDepth",
        "Synth Nodes",
        "Synth Ops",
        "Synth MaxDepth",
        "Synth MeanDepth",
    ]
    .map(String::from)
    .to_vec();

    let mut rows = Vec::new();
    for w in paper_workloads(scale) {
        let stats = TraceStats::measure(&w.profile.name, &w.trace, &w.tree);
        rows.push(vec![
            w.profile.name.clone(),
            format!("{:.1} GB", w.profile.paper_size_gb),
            format!("{}", w.profile.paper_records),
            format!("{}", w.profile.max_depth),
            format!("{}", stats.nodes),
            format!("{}", stats.records),
            format!("{}", stats.max_depth),
            format!("{:.2}", w.report.mean_depth),
        ]);
    }
    println!("{}", render_table("Table I", &headers, &rows));
    println!("Reproduction check: synthetic max depths must equal the paper's 49 / 9 / 13.");
}
