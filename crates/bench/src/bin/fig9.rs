//! Fig. 9 — balance performance as the cluster is scaled, for
//! global-layer proportions 0.001 / 0.01 / 0.10 / 0.20 (DTR).
//!
//! Paper shape this must reproduce: balance improves as the global-layer
//! proportion grows (more, finer subtrees split into the local layer
//! allocate more evenly), so the 0.20 curve dominates the 0.001 curve.

use d2tree_bench::{
    build_and_settle, fmt_float, normalized_cluster, paper_workloads, render_table, Scale,
};
use d2tree_core::{D2TreeConfig, D2TreeScheme};
use d2tree_metrics::balance;

fn main() {
    let scale = Scale::from_env();
    let workload = paper_workloads(scale).remove(0); // DTR
    let pop = workload.popularity();
    let proportions = [0.001, 0.01, 0.10, 0.20];
    let cluster_sizes = [2usize, 5, 10, 15, 20, 25, 30];

    println!("== Fig. 9: Balance vs cluster size for different GL proportions ==");
    println!("(trace DTR, D2-Tree only, 20 replay rounds)\n");

    let mut headers = vec!["GL prop.".to_owned()];
    headers.extend(cluster_sizes.iter().map(|m| format!("M={m}")));
    let mut rows = Vec::new();
    for &p in &proportions {
        let mut row = vec![format!("{p}")];
        for &m in &cluster_sizes {
            let mut scheme =
                D2TreeScheme::new(D2TreeConfig::by_proportion(p).with_seed(scale.seed));
            let cluster = normalized_cluster(m, &pop);
            let loads = build_and_settle(&mut scheme, &workload, &cluster, 20);
            row.push(fmt_float(balance(&loads, &cluster)));
        }
        rows.push(row);
    }
    println!("{}", render_table("Fig. 9", &headers, &rows));
    println!("Reproduction check: rows with larger proportions dominate (better balance).");
}
