//! Extension experiment: directory-rename overhead (Sec. II's critique of
//! hash-based mapping — "the overhead of rehashing metadata when renaming
//! an upper directory … is also considerable").
//!
//! For each scheme, rename the largest few directories and count how many
//! nodes must move servers as a consequence. Tree-based schemes move
//! nothing (the subtree stays put, only its name changes); full-pathname
//! hashing moves ~(M−1)/M of every renamed subtree.

use d2tree_baselines::HashMapping;
use d2tree_bench::{paper_workloads, render_table, Scale};
use d2tree_core::{D2TreeConfig, D2TreeScheme, Partitioner};
use d2tree_metrics::ClusterSpec;

fn main() {
    let scale = Scale::from_env();
    let workload = paper_workloads(scale).remove(0); // DTR
    let pop = workload.popularity();
    let m = 16;
    let cluster = ClusterSpec::homogeneous(m, 1.0);

    // The ten biggest non-root directories.
    let mut dirs: Vec<_> = workload
        .tree
        .nodes()
        .filter(|(id, n)| n.kind().is_directory() && *id != workload.tree.root())
        .map(|(id, _)| id)
        .collect();
    dirs.sort_by_key(|&id| std::cmp::Reverse(workload.tree.subtree_size(id)));
    dirs.truncate(10);

    let mut hash = HashMapping::new(scale.seed);
    hash.build(&workload.tree, &pop, &cluster);
    let mut d2 = D2TreeScheme::new(D2TreeConfig::paper_default().with_seed(scale.seed));
    d2.build(&workload.tree, &pop, &cluster);

    println!("== Extension: rename overhead, {m}-MDS cluster (DTR) ==\n");
    let headers: Vec<String> = [
        "Renamed dir",
        "Subtree nodes",
        "Hash moves",
        "D2-Tree moves",
    ]
    .map(String::from)
    .to_vec();
    let mut rows = Vec::new();
    let mut total_hash = 0usize;
    let mut total_size = 0usize;
    for &dir in &dirs {
        let size = workload.tree.subtree_size(dir);
        let moved = hash.rename_rehash_count(&workload.tree, dir, "renamed");
        total_hash += moved;
        total_size += size;
        rows.push(vec![
            workload.tree.path_of(dir).to_string(),
            format!("{size}"),
            format!("{moved}"),
            // A rename never changes which server hosts a subtree under
            // any tree-partitioning scheme: ids, not pathnames, address
            // the metadata.
            "0".to_owned(),
        ]);
    }
    println!("{}", render_table("Rename overhead", &headers, &rows));
    println!(
        "\nhash moved {total_hash}/{total_size} nodes ({:.1}%, expectation (M-1)/M = {:.1}%);\n\
         every tree-based scheme (D2-Tree, static/dynamic subtree) moves zero.",
        100.0 * total_hash as f64 / total_size as f64,
        100.0 * (m as f64 - 1.0) / m as f64
    );
}
