//! Fig. 7(a–c) — load-balance degree (Def. 5) under every scheme after
//! the paper's 20 replay-and-rebalance rounds, as the cluster is scaled.
//!
//! Faithful to the paper's procedure: the trace is split into 20
//! subtraces, each is replayed through the discrete-event simulator, the
//! scheme rebalances on decayed measured popularity between rounds, and
//! Def. 5 is computed over the *final* round's measured per-server
//! served-operation counts.
//!
//! Paper shapes this must reproduce: DROP and AngleCut balance best
//! (hashing granularity); D2-Tree beats dynamic subtree on LMBE and RA
//! (the global layer absorbs the flow-control nodes); static subtree is
//! the weakest.

use d2tree_baselines::paper_lineup;
use d2tree_bench::{
    fmt_float, mds_range, normalized_cluster, paper_workloads, render_table, Scale,
};
use d2tree_cluster::{SimConfig, Simulator};

fn main() {
    let scale = Scale::from_env();
    const ROUNDS: usize = 20;
    const DECAY: f64 = 0.5;
    println!("== Fig. 7: Load balancing (Def. 5) after {ROUNDS} replay rounds ==");
    println!("(each round: simulated subtrace replay -> decayed counters -> rebalance)\n");

    for workload in paper_workloads(scale) {
        let pop = workload.popularity();
        let mut headers = vec!["Scheme".to_owned()];
        headers.extend(mds_range().iter().map(|m| format!("M={m}")));

        let mut rows = Vec::new();
        let scheme_count = paper_lineup(0.01, scale.seed).len();
        for slot in 0..scheme_count {
            let mut row = Vec::new();
            let mut name = String::new();
            for &m in &mds_range() {
                let mut lineup = paper_lineup(0.01, scale.seed);
                let scheme = &mut lineup[slot];
                name = scheme.name().to_owned();
                let cluster = normalized_cluster(m, &pop);
                scheme.build(&workload.tree, &pop, &cluster);
                let sim = Simulator::new(SimConfig {
                    seed: scale.seed,
                    ..SimConfig::default()
                });
                let out = sim.replay_with_rebalance(
                    &workload.tree,
                    &workload.trace,
                    scheme.as_mut(),
                    &cluster,
                    ROUNDS,
                    DECAY,
                );
                let settled = *out.balance_per_round.last().expect("rounds ran");
                row.push(fmt_float(settled));
            }
            let mut full = vec![name];
            full.extend(row);
            rows.push(full);
        }
        println!(
            "{}",
            render_table(
                &format!("Fig. 7 — {}", workload.profile.name),
                &headers,
                &rows
            )
        );
    }
    println!("(balance = 1 / load-ratio variance over measured served ops; larger is better)");
}
