//! Fig. 7(a–c) — load-balance degree (Def. 5) under every scheme after
//! the paper's 20 replay-and-rebalance rounds, as the cluster is scaled.
//!
//! Faithful to the paper's procedure: the trace is split into 20
//! subtraces, each is replayed through the discrete-event simulator, the
//! scheme rebalances on decayed measured popularity between rounds, and
//! Def. 5 is computed over the *final* round's measured per-server
//! served-operation counts.
//!
//! Paper shapes this must reproduce: DROP and AngleCut balance best
//! (hashing granularity); D2-Tree beats dynamic subtree on LMBE and RA
//! (the global layer absorbs the flow-control nodes); static subtree is
//! the weakest.
//!
//! Cells are independent (each rebuilds its scheme from the shared
//! seed), so the grid fans out over [`parallel_cells`] and renders
//! in-order: output is byte-identical at any `D2_THREADS`.

use d2tree_baselines::paper_lineup;
use d2tree_bench::{
    fmt_float, mds_range, normalized_cluster, paper_workloads, parallel_cells, render_table, Scale,
};
use d2tree_cluster::{SimConfig, Simulator};

fn main() {
    let scale = Scale::from_env();
    const ROUNDS: usize = 20;
    const DECAY: f64 = 0.5;
    println!("== Fig. 7: Load balancing (Def. 5) after {ROUNDS} replay rounds ==");
    println!("(each round: simulated subtrace replay -> decayed counters -> rebalance)\n");

    let workloads = paper_workloads(scale);
    let pops: Vec<_> = workloads.iter().map(|w| w.popularity()).collect();
    let ms = mds_range();
    let names: Vec<String> = paper_lineup(0.01, scale.seed)
        .iter()
        .map(|s| s.name().to_owned())
        .collect();

    let cell_count = workloads.len() * names.len() * ms.len();
    let cells = parallel_cells(cell_count, |i| {
        let m_idx = i % ms.len();
        let slot = (i / ms.len()) % names.len();
        let w_idx = i / (ms.len() * names.len());
        let workload = &workloads[w_idx];
        let pop = &pops[w_idx];
        let mut lineup = paper_lineup(0.01, scale.seed);
        let scheme = &mut lineup[slot];
        let cluster = normalized_cluster(ms[m_idx], pop);
        scheme.build(&workload.tree, pop, &cluster);
        let sim = Simulator::new(SimConfig {
            seed: scale.seed,
            ..SimConfig::default()
        });
        let out = sim.replay_with_rebalance(
            &workload.tree,
            &workload.trace,
            scheme.as_mut(),
            &cluster,
            ROUNDS,
            DECAY,
        );
        let settled = *out.balance_per_round.last().expect("rounds ran");
        fmt_float(settled)
    });

    for (w_idx, workload) in workloads.iter().enumerate() {
        let mut headers = vec!["Scheme".to_owned()];
        headers.extend(ms.iter().map(|m| format!("M={m}")));

        let mut rows = Vec::new();
        for (slot, name) in names.iter().enumerate() {
            let base = (w_idx * names.len() + slot) * ms.len();
            let mut full = vec![name.clone()];
            full.extend(cells[base..base + ms.len()].iter().cloned());
            rows.push(full);
        }
        println!(
            "{}",
            render_table(
                &format!("Fig. 7 — {}", workload.profile.name),
                &headers,
                &rows
            )
        );
    }
    println!("(balance = 1 / load-ratio variance over measured served ops; larger is better)");
}
