//! Fig. 8 — the `L0` and `U0` values implied by different global-layer
//! proportions (DTR, 4 MDSs).
//!
//! Paper shape this must reproduce: both the achievable locality bound
//! `L0` and the update-cost budget `U0` grow monotonically with the
//! global-layer proportion.

use d2tree_bench::{paper_workloads, render_table, Scale};
use d2tree_core::split_to_proportion;

fn main() {
    let scale = Scale::from_env();
    let workload = paper_workloads(scale).remove(0); // DTR
    let pop = workload.popularity();

    // The paper's x-axis.
    let proportions = [0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.50];
    // u_j model: every update to a global-layer node must reach all 4
    // replicas (the paper's 4-MDS setting for this figure).
    let m = 4.0;
    let update_frac = workload.profile.op_mix.update;

    println!("== Fig. 8: L0 and U0 under different global-layer proportions ==");
    println!("(trace DTR, 4-MDS cluster, u_j = update_rate_j x M)\n");

    let headers: Vec<String> = ["GL proportion", "GL nodes", "L0 (x 1e-8)", "U0 (x 1e5)"]
        .map(String::from)
        .to_vec();
    let mut rows = Vec::new();
    for &p in &proportions {
        let (_, implied) = split_to_proportion(
            &workload.tree,
            &pop,
            |id| update_frac * pop.individual(id) * m,
            p,
        );
        rows.push(vec![
            format!("{p}"),
            format!("{}", implied.global_nodes),
            format!("{:.4}", implied.locality * 1e8),
            format!("{:.4}", implied.update_cost / 1e5),
        ]);
    }
    println!("{}", render_table("Fig. 8", &headers, &rows));
    println!("Reproduction check: both columns increase monotonically with the proportion.");
}
