//! Table II — operation breakdowns for the three traces: the paper's
//! percentages next to what our generators actually emit.

use d2tree_bench::{paper_workloads, render_table, Scale};
use d2tree_workload::{OpMix, TraceStats};

fn main() {
    let scale = Scale::from_env();
    println!("== Table II: Operation Breakdowns for Various Traces ==\n");

    let paper = [
        ("DTR", OpMix::dtr()),
        ("LMBE", OpMix::lmbe()),
        ("RA", OpMix::ra()),
    ];
    let headers: Vec<String> = [
        "Trace",
        "Read (paper)",
        "Read (ours)",
        "Write (paper)",
        "Write (ours)",
        "Update (paper)",
        "Update (ours)",
    ]
    .map(String::from)
    .to_vec();

    let mut rows = Vec::new();
    for (w, (name, mix)) in paper_workloads(scale).iter().zip(paper) {
        let stats = TraceStats::measure(name, &w.trace, &w.tree);
        rows.push(vec![
            name.to_owned(),
            format!("{:.3}%", mix.read * 100.0),
            format!("{:.3}%", stats.read_frac * 100.0),
            format!("{:.3}%", mix.write * 100.0),
            format!("{:.3}%", stats.write_frac * 100.0),
            format!("{:.3}%", mix.update * 100.0),
            format!("{:.3}%", stats.update_frac * 100.0),
        ]);
    }
    println!("{}", render_table("Table II", &headers, &rows));
    println!("Reproduction check: measured fractions within sampling noise of the paper's.");
}
