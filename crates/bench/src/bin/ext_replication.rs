//! Extension experiment (paper Sec. VII future work): cap the number of
//! global-layer replicas at `R ≤ M` and sweep `R`, measuring the
//! trade-off the paper anticipates — fewer replicas cut the replicated
//! update cost roughly `M/R`-fold while giving up some query spreading.
//!
//! Uses the update-heavy RA trace where the effect is largest.

use d2tree_bench::{normalized_cluster, paper_workloads, render_table, Scale};
use d2tree_cluster::{SimConfig, Simulator};
use d2tree_core::{D2TreeConfig, D2TreeScheme, Partitioner};
use d2tree_metrics::{balance, ClusterSpec};

fn main() {
    let scale = Scale::from_env();
    let workload = paper_workloads(scale).remove(2); // RA
    let pop = workload.popularity();
    let m = 16;
    let cluster = normalized_cluster(m, &pop);
    let sim = Simulator::new(SimConfig {
        seed: scale.seed,
        ..SimConfig::default()
    });

    println!("== Extension: global-layer replication threshold (RA, M = {m}) ==\n");
    let headers: Vec<String> = [
        "Replicas R",
        "Throughput (ops/s)",
        "Balance",
        "Replica applies / update",
    ]
    .map(String::from)
    .to_vec();
    let mut rows = Vec::new();
    for r in [1usize, 2, 4, 8, 16] {
        let mut config = D2TreeConfig::paper_default().with_seed(scale.seed);
        if r < m {
            config = config.with_replication_limit(r);
        }
        let mut scheme = D2TreeScheme::new(config);
        scheme.build(&workload.tree, &pop, &cluster);
        let out = sim.replay(&workload.tree, &workload.trace, &scheme);
        let loads: Vec<f64> = out.served_ops.iter().map(|&s| s as f64).collect();
        let total: f64 = loads.iter().sum();
        let measured = ClusterSpec::homogeneous(m, total / m as f64);
        rows.push(vec![
            format!("{r}"),
            format!("{:.0}", out.throughput),
            format!("{:.2}", balance(&loads, &measured)),
            format!("{r}"),
        ]);
    }
    println!(
        "{}",
        render_table("Replication threshold sweep", &headers, &rows)
    );
    println!(
        "\nExpected trade-off: small R concentrates global-layer queries (lower\n\
         balance / throughput) but each update syncs only R replicas; R = M is\n\
         the paper's default."
    );
}
