//! Criterion micro-benchmark: namespace-tree hot paths — resolution,
//! traversal, popularity roll-up and synthesis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use d2tree_workload::{synthesize_tree, TraceProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_namespace(c: &mut Criterion) {
    let profile = TraceProfile::dtr().with_nodes(50_000);
    let (tree, _) = synthesize_tree(&profile, 1);
    let ids: Vec<_> = tree.nodes().map(|(id, _)| id).collect();
    let mut rng = StdRng::seed_from_u64(2);
    let sample: Vec<_> = (0..1_000)
        .map(|_| ids[rng.gen_range(0..ids.len())])
        .collect();
    let paths: Vec<String> = sample
        .iter()
        .map(|&id| tree.path_of(id).to_string())
        .collect();

    c.bench_function("resolve_1k_paths", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for p in &paths {
                if tree.resolve_str(p).is_ok() {
                    found += 1;
                }
            }
            std::hint::black_box(found)
        });
    });

    c.bench_function("path_of_1k_nodes", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &id in &sample {
                total += tree.path_of(id).depth();
            }
            std::hint::black_box(total)
        });
    });

    c.bench_function("ancestor_chains_1k", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &id in &sample {
                total += tree.ancestors(id).count();
            }
            std::hint::black_box(total)
        });
    });

    c.bench_function("popularity_rollup_50k", |b| {
        let mut pop = d2tree_namespace::Popularity::new(&tree);
        for &id in &sample {
            pop.record(id, 1.0);
        }
        b.iter(|| {
            pop.decay(0.999); // invalidate so rollup does real work
            pop.rollup(&tree);
            std::hint::black_box(pop.is_rolled_up())
        });
    });

    let mut group = c.benchmark_group("synthesize_tree");
    group.sample_size(10);
    for nodes in [10_000usize, 50_000] {
        group.bench_with_input(BenchmarkId::new("nodes", nodes), &nodes, |b, &n| {
            let p = TraceProfile::lmbe().with_nodes(n);
            b.iter(|| std::hint::black_box(synthesize_tree(&p, 3).0.node_count()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_namespace);
criterion_main!(benches);
