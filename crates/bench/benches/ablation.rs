//! Ablation benchmarks for the design choices called out in DESIGN.md §7:
//!
//! 1. subtree granularity — intact local-layer subtrees vs a finer
//!    forced sub-split (balance vs locality trade);
//! 2. sampling size — sampled allocation vs full-information mirror
//!    division;
//! 3. global-layer proportion (also Fig. 8/9);
//! 4. decay factor of the popularity counters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use d2tree_core::{
    allocate_full, allocate_sampled, collect_subtrees, split_to_proportion, SampleStrategy,
};
use d2tree_metrics::mirror::bucket_loads;
use d2tree_metrics::ClusterSpec;
use d2tree_workload::{TraceProfile, WorkloadBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ablation(c: &mut Criterion) {
    let w = WorkloadBuilder::new(
        TraceProfile::dtr()
            .with_nodes(20_000)
            .with_operations(80_000),
    )
    .seed(8)
    .build();
    let pop = w.popularity();
    let cluster = ClusterSpec::homogeneous(8, 1.0);

    // Ablation 3: split cost by global-layer proportion.
    let mut group = c.benchmark_group("ablation_gl_proportion");
    for p in [0.001, 0.01, 0.1] {
        group.bench_with_input(BenchmarkId::new("prop", p), &p, |b, &p| {
            b.iter(|| {
                let (gl, implied) = split_to_proportion(&w.tree, &pop, |_| 0.0, p);
                std::hint::black_box((gl.len(), implied.locality))
            });
        });
    }
    group.finish();

    // Ablation 2: sampled vs full allocation cost (quality is reported by
    // the `theory` binary).
    let (gl, _) = split_to_proportion(&w.tree, &pop, |_| 0.0, 0.01);
    let subtrees = collect_subtrees(&w.tree, &gl, &pop);
    let mut group = c.benchmark_group("ablation_allocation");
    group.bench_function("full", |b| {
        b.iter(|| std::hint::black_box(allocate_full(&subtrees, &cluster)));
    });
    for k in [100usize, 2_000] {
        group.bench_with_input(BenchmarkId::new("sampled", k), &k, |b, &k| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| {
                std::hint::black_box(allocate_sampled(
                    &subtrees,
                    &cluster,
                    &w.tree,
                    &gl,
                    SampleStrategy::Uniform,
                    k,
                    &mut rng,
                ))
            });
        });
    }
    group.finish();

    // Ablation 1: granularity — allocating whole subtrees vs allocating
    // their children individually (finer pieces balance better but split
    // subtrees across servers, costing locality).
    let mut fine = Vec::new();
    for s in &subtrees {
        let node = w.tree.node(s.root).expect("live");
        if node.child_count() == 0 {
            fine.push(*s);
        } else {
            for (_, child) in node.children() {
                fine.push(d2tree_core::Subtree {
                    root: child,
                    parent: s.root,
                    popularity: pop.total(child),
                    size: w.tree.subtree_size(child),
                });
            }
        }
    }
    let mut group = c.benchmark_group("ablation_granularity");
    for (label, set) in [("intact", &subtrees), ("split_one_level", &fine)] {
        group.bench_with_input(BenchmarkId::new("units", label), set, |b, set| {
            b.iter(|| {
                let owners = allocate_full(set, &cluster);
                let weights: Vec<f64> = set.iter().map(|s| s.popularity).collect();
                let buckets: Vec<usize> = owners.iter().map(|o| o.index()).collect();
                std::hint::black_box(bucket_loads(&weights, &buckets, 8))
            });
        });
    }
    group.finish();

    // Ablation 4: decay factor — cost of the decay + rollup cycle.
    let mut group = c.benchmark_group("ablation_decay");
    for factor in [0.5, 0.9, 0.99] {
        group.bench_with_input(BenchmarkId::new("factor", factor), &factor, |b, &f| {
            b.iter(|| {
                let mut p = pop.clone();
                p.decay(f);
                p.rollup(&w.tree);
                std::hint::black_box(p.total(w.tree.root()))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
