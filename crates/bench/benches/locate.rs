//! Criterion micro-benchmark: per-access routing cost of every scheme —
//! the hot path of an MDS client.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use d2tree_baselines::extended_lineup;
use d2tree_metrics::ClusterSpec;
use d2tree_workload::{TraceProfile, WorkloadBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_locate(c: &mut Criterion) {
    let w = WorkloadBuilder::new(
        TraceProfile::ra()
            .with_nodes(20_000)
            .with_operations(80_000),
    )
    .seed(4)
    .build();
    let pop = w.popularity();
    let cluster = ClusterSpec::homogeneous(16, 1.0);

    let mut group = c.benchmark_group("route");
    for mut scheme in extended_lineup(0.01, 9) {
        scheme.build(&w.tree, &pop, &cluster);
        let targets: Vec<_> = w.trace.iter().take(1_000).map(|o| o.target).collect();
        group.bench_with_input(
            BenchmarkId::new("scheme", scheme.name()),
            &targets,
            |b, targets| {
                let mut rng = StdRng::seed_from_u64(5);
                b.iter(|| {
                    let mut hops = 0usize;
                    for &t in targets {
                        hops += scheme.route(&w.tree, t, &mut rng).hops();
                    }
                    std::hint::black_box(hops)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_locate);
criterion_main!(benches);
