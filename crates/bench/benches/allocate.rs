//! Criterion micro-benchmark: full vs sampled mirror-division allocation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use d2tree_core::{
    allocate_full, allocate_sampled, collect_subtrees, split_to_proportion, SampleStrategy,
};
use d2tree_metrics::ClusterSpec;
use d2tree_workload::{TraceProfile, WorkloadBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_allocate(c: &mut Criterion) {
    let w = WorkloadBuilder::new(
        TraceProfile::dtr()
            .with_nodes(40_000)
            .with_operations(160_000),
    )
    .seed(2)
    .build();
    let pop = w.popularity();
    let (gl, _) = split_to_proportion(&w.tree, &pop, |_| 0.0, 0.01);
    let subtrees = collect_subtrees(&w.tree, &gl, &pop);
    let cluster = ClusterSpec::homogeneous(16, 1.0);

    c.bench_function("allocate_full", |b| {
        b.iter(|| std::hint::black_box(allocate_full(&subtrees, &cluster)));
    });

    let mut group = c.benchmark_group("allocate_sampled");
    for k in [100usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::new("samples", k), &k, |b, &k| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                std::hint::black_box(allocate_sampled(
                    &subtrees,
                    &cluster,
                    &w.tree,
                    &gl,
                    SampleStrategy::Uniform,
                    k,
                    &mut rng,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allocate);
criterion_main!(benches);
