//! Criterion micro-benchmark: Tree-Splitting (Alg. 1) cost as the
//! namespace and the global-layer proportion grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use d2tree_core::split_to_proportion;
use d2tree_workload::{TraceProfile, WorkloadBuilder};

fn bench_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_split");
    for nodes in [5_000usize, 20_000, 80_000] {
        let w = WorkloadBuilder::new(
            TraceProfile::dtr()
                .with_nodes(nodes)
                .with_operations(nodes * 4),
        )
        .seed(1)
        .build();
        let pop = w.popularity();
        group.bench_with_input(BenchmarkId::new("nodes", nodes), &nodes, |b, _| {
            b.iter(|| {
                let (gl, _) =
                    split_to_proportion(&w.tree, &pop, |id| pop.individual(id) * 0.05, 0.01);
                std::hint::black_box(gl.len())
            });
        });
    }
    group.finish();

    let w = WorkloadBuilder::new(
        TraceProfile::dtr()
            .with_nodes(20_000)
            .with_operations(80_000),
    )
    .seed(1)
    .build();
    let pop = w.popularity();
    let mut group = c.benchmark_group("tree_split_proportion");
    for pct in [0.001, 0.01, 0.1, 0.5] {
        group.bench_with_input(BenchmarkId::new("prop", pct), &pct, |b, &p| {
            b.iter(|| {
                let (gl, _) = split_to_proportion(&w.tree, &pop, |_| 0.0, p);
                std::hint::black_box(gl.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_split);
criterion_main!(benches);
