//! Criterion macro-benchmark: discrete-event replay throughput (how fast
//! the simulator itself runs).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use d2tree_cluster::{SimConfig, Simulator};
use d2tree_core::{D2TreeConfig, D2TreeScheme, Partitioner};
use d2tree_metrics::ClusterSpec;
use d2tree_telemetry::Registry;
use d2tree_workload::{TraceProfile, WorkloadBuilder};

fn bench_replay(c: &mut Criterion) {
    let w = WorkloadBuilder::new(
        TraceProfile::dtr()
            .with_nodes(5_000)
            .with_operations(20_000),
    )
    .seed(7)
    .build();
    let pop = w.popularity();

    let mut group = c.benchmark_group("des_replay_20k_ops");
    group.sample_size(10);
    for m in [4usize, 16] {
        let cluster = ClusterSpec::homogeneous(m, 1.0);
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme.build(&w.tree, &pop, &cluster);
        let sim = Simulator::new(SimConfig {
            clients: 64,
            ..SimConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("mds", m), &m, |b, _| {
            b.iter(|| std::hint::black_box(sim.replay(&w.tree, &w.trace, &scheme).completed));
        });
    }
    group.finish();
}

/// Telemetry overhead: the same replay with and without a registry
/// attached. The instrumented path must stay within a few percent of the
/// bare one (handles are pre-resolved; recording is relaxed atomics).
fn bench_telemetry_overhead(c: &mut Criterion) {
    let w = WorkloadBuilder::new(
        TraceProfile::dtr()
            .with_nodes(5_000)
            .with_operations(20_000),
    )
    .seed(7)
    .build();
    let pop = w.popularity();
    let cluster = ClusterSpec::homogeneous(8, 1.0);
    let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
    scheme.build(&w.tree, &pop, &cluster);

    let mut group = c.benchmark_group("replay_telemetry_overhead");
    group.sample_size(10);
    let bare = Simulator::new(SimConfig {
        clients: 64,
        ..SimConfig::default()
    });
    group.bench_function("disabled", |b| {
        b.iter(|| std::hint::black_box(bare.replay(&w.tree, &w.trace, &scheme).completed));
    });
    let instrumented = Simulator::new(SimConfig {
        clients: 64,
        ..SimConfig::default()
    })
    .with_registry(Arc::new(Registry::new()));
    group.bench_function("enabled", |b| {
        b.iter(|| std::hint::black_box(instrumented.replay(&w.tree, &w.trace, &scheme).completed));
    });
    group.finish();
}

criterion_group!(benches, bench_replay, bench_telemetry_overhead);
criterion_main!(benches);
