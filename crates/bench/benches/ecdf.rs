//! Criterion micro-benchmark: ECDF construction/evaluation and the
//! mirror-division kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use d2tree_metrics::mirror::mirror_divide;
use d2tree_metrics::{Ecdf, Histogram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_ecdf(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let samples: Vec<f64> = (0..100_000).map(|_| rng.gen_range(0.0..1e6)).collect();

    c.bench_function("ecdf_build_100k", |b| {
        b.iter(|| std::hint::black_box(Ecdf::from_samples(samples.clone())));
    });

    let ecdf = Ecdf::from_samples(samples.clone());
    c.bench_function("ecdf_eval", |b| {
        b.iter(|| std::hint::black_box(ecdf.eval(5e5)));
    });

    c.bench_function("histogram_equi_probability_64", |b| {
        b.iter(|| std::hint::black_box(Histogram::equi_probability(&ecdf, 64)));
    });

    let mut group = c.benchmark_group("mirror_divide");
    for n in [1_000usize, 10_000, 100_000] {
        let weights: Vec<f64> = samples[..n].to_vec();
        let caps = vec![1.0; 32];
        group.bench_with_input(BenchmarkId::new("items", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(mirror_divide(&weights, &caps)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ecdf);
criterion_main!(benches);
